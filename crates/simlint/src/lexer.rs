//! A small hand-rolled Rust lexer.
//!
//! Produces just enough token structure for the rule set: identifiers,
//! single-character punctuation, literals, lifetimes, and comments (kept,
//! because waivers live in them). It understands the lexical shapes that
//! would otherwise produce false positives — nested block comments, raw
//! strings, byte strings, char-vs-lifetime — but deliberately does not
//! build an AST: every rule is a token-pattern over this stream.

/// Token class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation character (the `ch` field).
    Punct,
    /// String / raw string / byte string literal.
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// `// ...` comment (text includes the slashes).
    LineComment,
    /// `/* ... */` comment (possibly nested).
    BlockComment,
    /// `'label` lifetime.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Class.
    pub kind: TokKind,
    /// Source text for identifiers, comments, and string literals (the
    /// body between the quotes, escapes kept verbatim — the linking pass
    /// matches metric names by their literal spelling); empty for other
    /// kinds.
    pub text: String,
    /// Punctuation character for `Punct`, `\0` otherwise.
    pub ch: char,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.ch == c
    }

    /// Is this a comment of either flavour?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens. Never fails: unrecognised bytes lex as
/// punctuation, unterminated literals run to end-of-file.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($from:expr, $to:expr) => {
            for k in $from..$to {
                if chars[k] == '\n' {
                    line += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start = i;
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::LineComment,
                        text: chars[start..i].iter().collect(),
                        ch: '\0',
                        line: start_line,
                    });
                    continue;
                }
                '*' => {
                    let start = i;
                    i += 2;
                    let mut depth = 1usize;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                            depth += 1;
                            i += 2;
                        } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    bump_lines!(start, i.min(chars.len()));
                    toks.push(Tok {
                        kind: TokKind::BlockComment,
                        text: chars[start..i.min(chars.len())].iter().collect(),
                        ch: '\0',
                        line: start_line,
                    });
                    continue;
                }
                _ => {}
            }
        }
        // Identifiers — including raw-string / byte-string prefixes.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // r"..."  r#"..."#  b"..."  br#"..."#  b'.'
            let prefix_is_raw = matches!(text.as_str(), "r" | "br" | "rb");
            let prefix_is_byte = matches!(text.as_str(), "b" | "br" | "rb");
            if i < chars.len() {
                let next = chars[i];
                if prefix_is_raw && (next == '"' || next == '#') {
                    let str_start = i;
                    let mut hashes = 0usize;
                    while i < chars.len() && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < chars.len() && chars[i] == '"' {
                        i += 1; // opening quote
                        let body_start = i;
                        let mut body_end = chars.len();
                        'scan: while i < chars.len() {
                            if chars[i] == '"' {
                                let mut k = i + 1;
                                let mut seen = 0usize;
                                while k < chars.len() && chars[k] == '#' && seen < hashes {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    body_end = i;
                                    i = k;
                                    break 'scan;
                                }
                            }
                            i += 1;
                        }
                        bump_lines!(str_start, i.min(chars.len()));
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: chars[body_start..body_end].iter().collect(),
                            ch: '\0',
                            line: start_line,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier: rewind the hash scan.
                    i = str_start;
                }
                if prefix_is_byte && next == '"' {
                    i += 1;
                    let body_start = i;
                    i = scan_string(&chars, i);
                    bump_lines!(start, i.min(chars.len()));
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: string_body(&chars, body_start, i),
                        ch: '\0',
                        line: start_line,
                    });
                    continue;
                }
                if text == "b" && next == '\'' {
                    i += 1;
                    i = scan_char(&chars, i);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        ch: '\0',
                        line: start_line,
                    });
                    continue;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                ch: '\0',
                line: start_line,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            let start = i;
            i += 1;
            let body_start = i;
            i = scan_string(&chars, i);
            bump_lines!(start, i.min(chars.len()));
            toks.push(Tok {
                kind: TokKind::Str,
                text: string_body(&chars, body_start, i),
                ch: '\0',
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let one = chars.get(i + 1).copied();
            let two = chars.get(i + 2).copied();
            let is_lifetime = match (one, two) {
                (Some(a), Some(b)) => is_ident_start(a) && b != '\'',
                (Some(a), None) => is_ident_start(a),
                _ => false,
            };
            if is_lifetime {
                let start = i + 1;
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    ch: '\0',
                    line: start_line,
                });
            } else {
                i += 1;
                i = scan_char(&chars, i);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    ch: '\0',
                    line: start_line,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            while i < chars.len() && (is_ident_continue(chars[i])) {
                i += 1;
            }
            // A fractional part, but not the `0..n` range syntax.
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: String::new(),
                ch: '\0',
                line: start_line,
            });
            continue;
        }
        // Everything else: single punctuation character.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: String::new(),
            ch: c,
            line: start_line,
        });
        i += 1;
    }
    toks
}

/// Body of a string whose opening quote sat just before `body_start` and
/// whose scan ended at `end` (one past the closing quote, or end-of-file
/// when unterminated).
fn string_body(chars: &[char], body_start: usize, end: usize) -> String {
    let stop = end.min(chars.len());
    let stop = if stop > body_start && chars[stop - 1] == '"' {
        stop - 1
    } else {
        stop
    };
    chars[body_start..stop].iter().collect()
}

/// Scan past the body and closing quote of a normal (escaped) string,
/// starting just after the opening quote. Returns the index after the
/// closing quote.
fn scan_string(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scan past the body and closing quote of a char literal.
fn scan_char(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_and_paths() {
        let toks = lex("std::time::Instant::now()");
        let names: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, ["std", "time", "Instant", "now"]);
    }

    #[test]
    fn string_contents_are_not_code() {
        assert_eq!(idents(r#"let x = "HashMap::unwrap()";"#), ["let", "x"]);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        assert_eq!(
            idents(r###"let x = r#"contains "unwrap()" inside"# ; y"###),
            ["let", "x", "y"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("/* a /* unwrap() */ still comment */ real"),
            ["real"]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn comments_are_kept_with_text() {
        let toks = lex("x // simlint: allow(I001): reason\ny");
        let c: Vec<&Tok> = toks.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(c.len(), 1);
        assert!(c[0].text.contains("allow(I001)"));
        assert_eq!(c[0].line, 1);
    }

    #[test]
    fn string_tokens_keep_their_body() {
        let strs: Vec<String> = lex(r###"f("plain"); g(r#"raw body"#); h(b"bytes");"###)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, ["plain", "raw body", "bytes"]);
    }

    #[test]
    fn byte_strings_and_range_numbers() {
        assert_eq!(
            idents(r#"for i in 0..10 { eat(b"unwrap()") }"#),
            ["for", "i", "in", "eat"]
        );
    }
}
