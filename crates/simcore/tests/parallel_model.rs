//! Model-based property test for the conservative parallel engine.
//!
//! Builds randomized topologies (random link graphs, random lookaheads) of
//! logical processes that fan out randomized self-sends and cross-partition
//! sends from a per-partition [`SimRng`], then checks three invariants the
//! windowed executor must uphold at every thread count:
//!
//! 1. **Lookahead** — every cross-partition message arrives at least its
//!    link's declared lookahead after it was sent (asserted in the handler
//!    from data carried inside the message).
//! 2. **Safe time** — no partition ever executes an event older than one it
//!    already executed (its local clock is monotone), i.e. the barrier
//!    window never releases an event that a straggler message could precede.
//! 3. **Determinism** — the complete per-partition delivery log (time, tag,
//!    local-vs-remote) of the windowed executor at 1/2/4/8 threads equals
//!    the sequential reference executor's log *exactly*, including FIFO
//!    order among same-tick cross-partition arrivals from different
//!    sources. This subsumes the "same-tick cross-partition FIFO matches
//!    the sequential model" requirement.

use simcore::parallel::{
    LogicalProcess, Message, ParallelEngine, PartitionCtx, PartitionId, Topology,
};
use simcore::{SimDuration, SimRng, SimTime};
use std::sync::{Arc, Mutex};

/// What a node observes for one delivered event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Obs {
    now: u64,
    tag: u64,
    remote: bool,
}

/// Cross-partition payload: carries enough provenance to check lookahead on
/// arrival.
struct Remote {
    sent: u64,
    lookahead: u64,
    tag: u64,
}

struct Node {
    rng: SimRng,
    /// Outgoing links as `(dest, lookahead_ns)`.
    peers: Vec<(PartitionId, u64)>,
    log: Arc<Mutex<Vec<Obs>>>,
    /// Remaining sends; bounds the run.
    budget: u32,
    last_now: u64,
}

impl Node {
    fn fan_out(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
        let fan = self.rng.below(3) as u32 + 1;
        for _ in 0..fan {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let tag = self.rng.next_u64();
            let pick = self.rng.below(self.peers.len() as u64 + 1);
            if pick == 0 || self.peers.is_empty() {
                ctx.send_self(SimDuration::from_nanos(self.rng.below(30)), Box::new(tag));
            } else {
                let (dest, lookahead) = self.peers[(pick as usize - 1) % self.peers.len()];
                let delay = lookahead + self.rng.below(50);
                ctx.send(
                    dest,
                    SimDuration::from_nanos(delay),
                    Box::new(Remote {
                        sent: ctx.now().as_nanos(),
                        lookahead,
                        tag,
                    }),
                );
            }
        }
    }
}

impl LogicalProcess for Node {
    fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
        ctx.send_self(SimDuration::ZERO, Box::new(self.rng.next_u64()));
    }

    fn handle(&mut self, now: SimTime, msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
        // Invariant 2: the partition's clock never runs backwards.
        assert!(
            now.as_nanos() >= self.last_now,
            "partition executed an event at {} after one at {}",
            now.as_nanos(),
            self.last_now
        );
        self.last_now = now.as_nanos();
        let obs = match msg.downcast::<Remote>() {
            Ok(remote) => {
                // Invariant 1: arrival respects the link's lookahead.
                assert!(
                    now.as_nanos() - remote.sent >= remote.lookahead,
                    "message sent at {} arrived at {} under lookahead {}",
                    remote.sent,
                    now.as_nanos(),
                    remote.lookahead
                );
                Obs {
                    now: now.as_nanos(),
                    tag: remote.tag,
                    remote: true,
                }
            }
            Err(local) => Obs {
                now: now.as_nanos(),
                tag: *local.downcast::<u64>().unwrap(),
                remote: false,
            },
        };
        self.log.lock().unwrap().push(obs);
        self.fan_out(ctx);
    }
}

/// Deterministically derived random topology: node count, link graph, and
/// lookaheads all come from `seed`.
fn build(seed: u64, threads: Option<usize>) -> (Vec<Vec<Obs>>, u64) {
    let mut rng = SimRng::new(seed);
    let n = 4 + rng.below(5) as usize;
    let mut links: Vec<Vec<(PartitionId, u64)>> = vec![Vec::new(); n];
    for (from, out) in links.iter_mut().enumerate() {
        for to in 0..n {
            if from != to && rng.below(3) == 0 {
                out.push((PartitionId(to), 5 + rng.below(20)));
            }
        }
    }
    let logs: Vec<Arc<Mutex<Vec<Obs>>>> =
        (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let mut topo = Topology::new();
    for (i, log) in logs.iter().enumerate() {
        topo.add_partition(Box::new(Node {
            rng: SimRng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            peers: links[i].clone(),
            log: log.clone(),
            budget: 200,
            last_now: 0,
        }));
    }
    for (from, out) in links.iter().enumerate() {
        for &(to, lookahead) in out {
            topo.connect(PartitionId(from), to, SimDuration::from_nanos(lookahead));
        }
    }
    let mut engine = ParallelEngine::new(topo);
    let stats = match threads {
        Some(t) => engine.run(t),
        None => engine.run_sequential(),
    };
    let out = logs
        .iter()
        .map(|l| l.lock().unwrap().clone())
        .collect::<Vec<_>>();
    (out, stats.events)
}

#[test]
fn windowed_executor_matches_sequential_reference() {
    for seed in [1, 2, 3, 42, 0xDEAD_BEEF] {
        let (expect, expect_events) = build(seed, None);
        assert!(
            expect.iter().map(Vec::len).sum::<usize>() > 100,
            "seed {seed}: workload too small to be interesting"
        );
        for threads in [1, 2, 4, 8] {
            let (got, got_events) = build(seed, Some(threads));
            assert_eq!(
                got_events, expect_events,
                "seed {seed} threads {threads}: event count diverged"
            );
            for (pid, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(
                    g, e,
                    "seed {seed} threads {threads}: partition {pid} delivery log diverged"
                );
            }
        }
    }
}

#[test]
fn same_tick_remote_fifo_matches_sequential() {
    // Dedicated many-senders-one-sink shape: every sender fires at the same
    // instants, so the sink's log is dominated by same-tick cross-partition
    // ties — exactly the case a racy merge would scramble.
    struct Sender {
        sink: PartitionId,
        me: u64,
        rounds: u64,
    }
    impl LogicalProcess for Sender {
        fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
            ctx.send_self(SimDuration::ZERO, Box::new(0u64));
        }
        fn handle(&mut self, _now: SimTime, msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
            let round = *msg.downcast::<u64>().unwrap();
            ctx.send(
                self.sink,
                SimDuration::from_nanos(10),
                Box::new(Remote {
                    sent: ctx.now().as_nanos(),
                    lookahead: 10,
                    tag: self.me * 1000 + round,
                }),
            );
            if round + 1 < self.rounds {
                ctx.send_self(SimDuration::from_nanos(10), Box::new(round + 1));
            }
        }
    }
    struct Sink {
        log: Arc<Mutex<Vec<Obs>>>,
    }
    impl LogicalProcess for Sink {
        fn handle(&mut self, now: SimTime, msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {
            let remote = msg.downcast::<Remote>().unwrap();
            self.log.lock().unwrap().push(Obs {
                now: now.as_nanos(),
                tag: remote.tag,
                remote: true,
            });
        }
    }
    let run = |threads: Option<usize>| -> Vec<Obs> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut topo = Topology::new();
        let senders = 6;
        let sink_id = PartitionId(senders);
        for me in 0..senders {
            topo.add_partition(Box::new(Sender {
                sink: sink_id,
                me: me as u64,
                rounds: 20,
            }));
        }
        let sink = topo.add_partition(Box::new(Sink { log: log.clone() }));
        for me in 0..senders {
            topo.connect(PartitionId(me), sink, SimDuration::from_nanos(10));
        }
        let mut engine = ParallelEngine::new(topo);
        match threads {
            Some(t) => engine.run(t),
            None => engine.run_sequential(),
        };
        let out = log.lock().unwrap().clone();
        out
    };
    let expect = run(None);
    assert_eq!(expect.len(), 6 * 20);
    // Same-tick ties must land in source-id order in the reference too.
    for pair in expect.windows(2) {
        if pair[0].now == pair[1].now {
            assert!(pair[0].tag / 1000 <= pair[1].tag / 1000);
        }
    }
    for threads in [1, 2, 4, 8] {
        assert_eq!(run(Some(threads)), expect, "threads {threads}");
    }
}
