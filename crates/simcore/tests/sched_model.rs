//! Model-based property test for the event schedulers.
//!
//! Drives an [`Engine`] through a long random mix of schedule / cancel /
//! advance operations and mirrors every operation in a trivially-correct
//! sorted-vec model. The observable execution log (which event ran, in
//! what order, at what clock reading) must match the model exactly —
//! including FIFO order among events scheduled for the same tick, and
//! children spawned *during* execution at the parent's own timestamp.
//!
//! Both scheduler implementations are checked, so the test is
//! simultaneously a wheel-vs-model and heap-vs-model oracle.

use simcore::{Engine, EventId, SchedulerKind, SimDuration, SimRng};
use std::cell::RefCell;
use std::rc::Rc;

/// A pending event in the model: fires at `time`, tie-broken by the
/// global schedule sequence number `seq`.
#[derive(Clone, Copy)]
struct ModelEvent {
    time: u64,
    seq: u64,
    id: u64,
}

/// The sorted-vec model: linear scan for the minimum `(time, seq)`.
#[derive(Default)]
struct Model {
    pending: Vec<ModelEvent>,
    next_seq: u64,
    now: u64,
}

impl Model {
    fn schedule(&mut self, time: u64, id: u64) {
        assert!(time >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(ModelEvent { time, seq, id });
    }

    /// Remove the pending event with logical id `id`; true if it was
    /// still pending (mirrors [`Engine::cancel`]).
    fn cancel(&mut self, id: u64) -> bool {
        match self.pending.iter().position(|e| e.id == id) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    /// Execute everything due by `deadline` in `(time, seq)` order,
    /// appending `(id, clock)` to `log`. Events whose id is divisible by
    /// [`SPAWN_DIVISOR`] spawn one child at their own timestamp — the
    /// same rule the engine-side closures implement.
    fn advance(&mut self, span: u64, log: &mut Vec<(u64, u64)>) {
        let deadline = self.now + span;
        loop {
            let due = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, e)| e.time <= deadline)
                .min_by_key(|(_, e)| (e.time, e.seq))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let ev = self.pending.remove(i);
            self.now = ev.time;
            log.push((ev.id, self.now));
            if ev.id.is_multiple_of(SPAWN_DIVISOR) {
                self.schedule(ev.time, ev.id + CHILD_OFFSET);
            }
        }
        self.now = deadline;
    }
}

/// Events with `id % SPAWN_DIVISOR == 0` spawn a same-tick child.
const SPAWN_DIVISOR: u64 = 7;
/// Child ids are offset far above parent ids so they never collide.
const CHILD_OFFSET: u64 = 1 << 32;

/// One operation of the random script, pre-generated so both the engine
/// and the model see the identical sequence.
enum Op {
    /// Schedule event `id` at `delay` ns from the current clock.
    Schedule { id: u64, delay: u64 },
    /// Cancel the `nth` tracked cancellable event (if any remain).
    Cancel { nth: usize },
    /// Advance the clock by `span` ns, running everything due.
    Advance { span: u64 },
}

fn random_script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SimRng::new(seed);
    let mut next_id = 1u64;
    (0..len)
        .map(|_| match rng.below(10) {
            0..=5 => {
                let id = next_id;
                next_id += 1;
                Op::Schedule {
                    id,
                    // Skewed toward small delays (and often zero) so many
                    // events collide on the same tick and wheel slot.
                    delay: match rng.below(4) {
                        0 => 0,
                        1 => rng.below(8),
                        2 => rng.below(300),
                        _ => rng.below(200_000),
                    },
                }
            }
            6..=7 => Op::Cancel {
                nth: rng.below(64) as usize,
            },
            _ => Op::Advance {
                span: rng.below(5_000),
            },
        })
        .collect()
}

/// Run the script against a real engine; returns the `(id, clock)` log.
fn run_engine(kind: SchedulerKind, script: &[Op]) -> Vec<(u64, u64)> {
    let engine = Engine::with_scheduler(kind);
    let log: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));

    fn fire(engine: &Engine, log: &Rc<RefCell<Vec<(u64, u64)>>>, id: u64) {
        log.borrow_mut().push((id, engine.now().as_nanos()));
        if id.is_multiple_of(SPAWN_DIVISOR) {
            let child = id + CHILD_OFFSET;
            let engine2 = engine.clone();
            let log2 = log.clone();
            engine.schedule_at(engine.now(), move || fire(&engine2, &log2, child));
        }
    }

    let mut cancellable: Vec<(u64, EventId)> = Vec::new();
    for op in script {
        match op {
            Op::Schedule { id, delay } => {
                let engine2 = engine.clone();
                let log2 = log.clone();
                let id = *id;
                let handle = engine
                    .schedule_cancellable_in(SimDuration::from_nanos(*delay), move || {
                        fire(&engine2, &log2, id)
                    });
                cancellable.push((id, handle));
            }
            Op::Cancel { nth } => {
                if !cancellable.is_empty() {
                    let (_, handle) = cancellable.remove(nth % cancellable.len());
                    engine.cancel(handle);
                }
            }
            Op::Advance { span } => engine.advance(SimDuration::from_nanos(*span)),
        }
    }
    engine.run_until_idle();
    Rc::try_unwrap(log).unwrap().into_inner()
}

/// Run the script against the sorted-vec model; returns the same log.
fn run_model(script: &[Op]) -> Vec<(u64, u64)> {
    let mut model = Model::default();
    let mut log = Vec::new();
    let mut cancellable: Vec<u64> = Vec::new();
    for op in script {
        match op {
            Op::Schedule { id, delay } => {
                model.schedule(model.now + delay, *id);
                cancellable.push(*id);
            }
            Op::Cancel { nth } => {
                if !cancellable.is_empty() {
                    let id = cancellable.remove(nth % cancellable.len());
                    model.cancel(id);
                }
            }
            Op::Advance { span } => model.advance(*span, &mut log),
        }
    }
    // run_until_idle: everything left, regardless of time.
    model.advance(u64::MAX - model.now, &mut log);
    log
}

/// Note the cancel bookkeeping difference: the engine removes handles from
/// its tracking list on cancel but `Engine::cancel` of an already-fired
/// event is a no-op, while the model drops fired events from `pending`
/// naturally. Both sides pick "the nth tracked entry", and entries are
/// pushed in identical order, so the choices line up.
fn check(kind: SchedulerKind, seed: u64) {
    let script = random_script(seed, 4_000);
    let expect = run_model(&script);
    let got = run_engine(kind, &script);
    assert_eq!(
        got.len(),
        expect.len(),
        "{kind:?} seed {seed}: executed-event count diverged"
    );
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(
            g, e,
            "{kind:?} seed {seed}: divergence at event #{i}: engine fired {g:?}, model {e:?}"
        );
    }
}

#[test]
fn wheel_matches_sorted_vec_model() {
    for seed in [1, 2, 3, 0xDEAD_BEEF] {
        check(SchedulerKind::TimingWheel, seed);
    }
}

#[test]
fn reference_heap_matches_sorted_vec_model() {
    for seed in [1, 2, 3, 0xDEAD_BEEF] {
        check(SchedulerKind::ReferenceHeap, seed);
    }
}

#[test]
fn wheel_and_heap_agree_on_long_mixed_scripts() {
    for seed in [11, 12] {
        let script = random_script(seed, 8_000);
        let wheel = run_engine(SchedulerKind::TimingWheel, &script);
        let heap = run_engine(SchedulerKind::ReferenceHeap, &script);
        assert_eq!(wheel, heap, "seed {seed}");
    }
}
