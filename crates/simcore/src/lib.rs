#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # simcore — deterministic discrete-event simulation engine
//!
//! Foundation for the HPBD reproduction suite. Every other crate in this
//! workspace (the InfiniBand fabric, the TCP stack, the block layer, the VM
//! subsystem, the HPBD client/server) is built on the primitives here:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time in integer nanoseconds.
//! * [`Engine`] — a single-threaded event queue with deterministic ordering.
//!   Events are boxed closures; components hold a cloned [`Engine`] handle
//!   and schedule follow-up events from inside event callbacks.
//! * [`Resource`] — a serially-reusable timing resource (a CPU core, a DMA
//!   engine, a wire). Reserving a duration returns the start/end times after
//!   FIFO queueing, which is how contention and overlap are modeled.
//! * [`Signal`] / [`Latch`] — completion flags that the driver loop can run
//!   the engine against ("run until this swap-in finished").
//! * [`rng`] — a small deterministic RNG so identical seeds give identical
//!   simulations.
//! * [`stats`] — online statistics and histograms used by the experiment
//!   harness.
//!
//! The engine also carries the suite's observability handles: a
//! [`simtrace::Tracer`] (disabled by default, installed by harnesses
//! that want a Chrome trace) and a [`simtrace::MetricsRegistry`] that
//! instrumented components record into. Holding them on the [`Engine`]
//! means every layer can reach them without extra plumbing.
//!
//! The engine is deliberately single-threaded (`Rc`-based): determinism is a
//! core requirement for reproducing the paper's figures exactly and for
//! property-based testing. Parallelism lives one layer up, in [`parallel`]:
//! a conservative parallel-DES core where whole simulations (or partitions
//! of one) are [`parallel::LogicalProcess`]es advanced in lookahead-bounded
//! barrier windows, with deterministic cross-partition delivery keys so the
//! observable event order — and therefore every trace byte — is identical at
//! any thread count. The sequential engine remains the default and the
//! reference oracle.

pub mod engine;
pub mod parallel;
pub mod resource;
pub mod rng;
mod sched;
pub mod signal;
pub mod stats;
pub mod time;

pub use engine::{default_scheduler, set_default_scheduler, Engine, EventId, SchedulerKind};
pub use parallel::{LogicalProcess, ParallelEngine, PartitionCtx, PartitionId, Topology};
pub use resource::{MultiResource, Resource};
pub use rng::SimRng;
pub use signal::{Counter, Latch, Signal};
pub use simtrace::{
    FlightSummary, LifecycleHub, MetricsRegistry, MetricsSnapshot, TraceSession, Tracer,
};
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
