//! Conservative parallel discrete-event simulation (PDES) core.
//!
//! [`Engine`](crate::Engine) is deliberately `Rc`-based and single-threaded;
//! this module adds the *between-engines* layer: a simulation is partitioned
//! into [`LogicalProcess`]es (LPs), each owning its local event queue, and a
//! [`ParallelEngine`] advances all partitions together under conservative
//! (Chandy–Misra-style) synchronization:
//!
//! * Every cross-partition link declares a **lookahead** — a hard lower bound
//!   on the virtual delay of any message sent over it (for the HPBD cluster
//!   this is the minimum wire propagation latency from netmodel). Sends below
//!   the declared lookahead panic.
//! * The engine advances in **barrier windows** `[T, T + L)` where `T` is the
//!   global minimum pending event time and `L` is the minimum lookahead over
//!   all links. Any message sent from an event inside the window arrives at
//!   `>= T + L`, so every partition can execute its window independently —
//!   worker threads claim partitions from an atomic queue — and all
//!   cross-partition traffic is merged at the barrier before the next window.
//! * **Deterministic delivery**: every event carries an explicit ordering key
//!   `(time, class, source partition, source sequence)`. Self-scheduled
//!   events (class 0) order before cross-partition arrivals (class 1) at the
//!   same instant, and same-instant arrivals order by `(source, send seq)`.
//!   The key is intrinsic to the message — not to thread interleaving — so
//!   the per-partition execution order is identical at any thread count.
//!
//! The module also ships its own oracle: [`ParallelEngine::run_sequential`]
//! executes the same topology with a single global loop (smallest key across
//! all partitions, one event at a time, immediate delivery) and shares only
//! the key definition with the windowed executor. Differential tests run both
//! and require byte-identical observable output.
//!
//! [`run_cells`] is the degenerate-topology special case used by the bench
//! harness: N fully independent cells (no links, infinite lookahead) run as N
//! single-event LPs, which is how `--sim-threads` parallelizes a figure while
//! keeping its output byte-identical.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{default_scheduler, set_default_scheduler};
use crate::time::{SimDuration, SimTime};

/// Opaque event payload delivered to a [`LogicalProcess`]. Downcast with
/// [`Box::downcast`] / [`Any::downcast_ref`].
pub type Message = Box<dyn Any + Send>;

/// Identifies a partition (one [`LogicalProcess`]) within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PartitionId(pub usize);

/// One partition of a sharded simulation: owns private state, receives
/// timestamped messages, and may schedule follow-ups to itself or (over a
/// declared link) to other partitions.
///
/// Implementations must be `Send` — the windowed executor moves partitions
/// across worker threads between windows — but never need to be `Sync`:
/// a partition is only ever executed by one thread at a time, so interior
/// `Rc`/`RefCell` state (an embedded [`Engine`](crate::Engine), say) is fine.
pub trait LogicalProcess: Send {
    /// Called once at `t = 0` before any event runs; schedule the partition's
    /// initial events here. Default: no-op.
    fn init(&mut self, _ctx: &mut PartitionCtx<'_, '_>) {}

    /// Handle one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, msg: Message, ctx: &mut PartitionCtx<'_, '_>);
}

/// Intrinsic event ordering key. Shared verbatim by the windowed and the
/// sequential executors — determinism of the whole module reduces to this
/// key being derived from message identity, never from thread timing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct EventKey {
    time: SimTime,
    /// 0 = self-scheduled, 1 = cross-partition arrival.
    class: u8,
    /// Scheduling partition (self for class 0, sender for class 1).
    src: usize,
    /// Per-`(src, class)` monotone sequence number.
    seq: u64,
}

/// A cross-partition message captured in a window outbox, merged at the
/// barrier. Its delivery key `(recv_time, class 1, src, src_seq)` is fixed
/// at send time.
struct CrossMsg {
    recv_time: SimTime,
    src: usize,
    src_seq: u64,
    dest: usize,
    msg: Message,
}

struct Partition<'a> {
    id: usize,
    lp: Box<dyn LogicalProcess + 'a>,
    queue: BTreeMap<EventKey, Message>,
    /// Next sequence number for self-scheduled events.
    local_seq: u64,
    /// Next sequence number for cross-partition sends from this partition.
    send_seq: u64,
    /// Outgoing links: destination partition → declared lookahead.
    links: BTreeMap<usize, SimDuration>,
}

/// Scheduling context handed to a [`LogicalProcess`] while it executes an
/// event. All sends go through here so the engine can stamp deterministic
/// ordering keys and police lookahead.
pub struct PartitionCtx<'a, 'lp> {
    now: SimTime,
    id: usize,
    local_seq: &'a mut u64,
    send_seq: &'a mut u64,
    links: &'a BTreeMap<usize, SimDuration>,
    queue: &'a mut BTreeMap<EventKey, Message>,
    outbox: &'a mut Vec<CrossMsg>,
    _marker: std::marker::PhantomData<&'lp ()>,
}

impl PartitionCtx<'_, '_> {
    /// Virtual time of the event being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The executing partition's id.
    pub fn partition(&self) -> PartitionId {
        PartitionId(self.id)
    }

    /// Schedule a message to this partition itself, `delay` from now.
    /// Zero delay is allowed (the event still runs after the current one).
    pub fn send_self(&mut self, delay: SimDuration, msg: Message) {
        let key = EventKey {
            time: self.now + delay,
            class: 0,
            src: self.id,
            seq: *self.local_seq,
        };
        *self.local_seq += 1;
        let prev = self.queue.insert(key, msg);
        debug_assert!(prev.is_none(), "self-event key collision");
    }

    /// Send a message to partition `dest` over a declared link, arriving
    /// `delay` from now.
    ///
    /// # Panics
    ///
    /// Panics if no link `self → dest` was declared with
    /// [`Topology::connect`], or if `delay` undercuts the link's lookahead —
    /// both are topology bugs that would silently break conservative
    /// synchronization if allowed through.
    pub fn send(&mut self, dest: PartitionId, delay: SimDuration, msg: Message) {
        let lookahead = *self.links.get(&dest.0).unwrap_or_else(|| {
            panic!(
                "partition {} has no link to partition {} (declare it with Topology::connect)",
                self.id, dest.0
            )
        });
        assert!(
            delay >= lookahead,
            "cross-partition send from {} to {} with delay {} violates link lookahead {}",
            self.id,
            dest.0,
            delay,
            lookahead
        );
        self.outbox.push(CrossMsg {
            recv_time: self.now + delay,
            src: self.id,
            src_seq: *self.send_seq,
            dest: dest.0,
            msg,
        });
        *self.send_seq += 1;
    }

    /// Declared lookahead of the link to `dest`, if one exists.
    pub fn lookahead_to(&self, dest: PartitionId) -> Option<SimDuration> {
        self.links.get(&dest.0).copied()
    }
}

/// A static partition graph: logical processes plus the lookahead-annotated
/// links between them. Build one, then hand it to [`ParallelEngine::new`].
///
/// The lifetime parameter lets logical processes borrow from the caller's
/// stack (the bench federation closures do), mirroring scoped threads;
/// `Topology<'static>` is the common case and reads as plain `Topology`.
#[derive(Default)]
pub struct Topology<'a> {
    partitions: Vec<Partition<'a>>,
}

impl<'a> Topology<'a> {
    /// An empty topology.
    pub fn new() -> Topology<'a> {
        Topology {
            partitions: Vec::new(),
        }
    }

    /// Add a partition; ids are assigned densely in insertion order.
    pub fn add_partition(&mut self, lp: Box<dyn LogicalProcess + 'a>) -> PartitionId {
        let id = self.partitions.len();
        self.partitions.push(Partition {
            id,
            lp,
            queue: BTreeMap::new(),
            local_seq: 0,
            send_seq: 0,
            links: BTreeMap::new(),
        });
        PartitionId(id)
    }

    /// Declare a one-way link `from → to` whose messages always take at
    /// least `lookahead` of virtual time. Redeclaring a link keeps the
    /// smaller lookahead (conservative).
    ///
    /// # Panics
    ///
    /// Panics on zero lookahead (the barrier window would never advance) or
    /// an out-of-range partition id.
    pub fn connect(&mut self, from: PartitionId, to: PartitionId, lookahead: SimDuration) {
        assert!(
            !lookahead.is_zero(),
            "zero lookahead on link {} -> {}: conservative windows could not advance",
            from.0,
            to.0
        );
        assert!(to.0 < self.partitions.len(), "unknown partition {}", to.0);
        let links = &mut self.partitions[from.0].links;
        let entry = links.entry(to.0).or_insert(lookahead);
        *entry = (*entry).min(lookahead);
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True if no partitions were added.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }
}

/// Aggregate counters from a [`ParallelEngine`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events executed (across all partitions, init events excluded).
    pub events: u64,
    /// Barrier windows executed (1 for a link-free topology; 0 for the
    /// sequential reference executor, which has no windows).
    pub windows: u64,
    /// Virtual time of the last executed event.
    pub end: SimTime,
}

/// Conservative windowed executor over a [`Topology`]. See the module docs
/// for the synchronization protocol; [`run`](ParallelEngine::run) is the
/// production path, [`run_sequential`](ParallelEngine::run_sequential) the
/// reference oracle.
pub struct ParallelEngine<'a> {
    partitions: Vec<Partition<'a>>,
    /// Global minimum link lookahead; `None` (no links) means one window
    /// drains everything.
    min_lookahead: Option<SimDuration>,
    perturb_merge: bool,
}

impl<'a> ParallelEngine<'a> {
    /// Build an engine from a topology. The window width is fixed here as
    /// the minimum lookahead over all declared links.
    pub fn new(topology: Topology<'a>) -> ParallelEngine<'a> {
        let min_lookahead = topology
            .partitions
            .iter()
            .flat_map(|p| p.links.values())
            .min()
            .copied();
        ParallelEngine {
            partitions: topology.partitions,
            min_lookahead,
            perturb_merge: false,
        }
    }

    /// Test hook: deliberately corrupt the cross-partition merge tie-break
    /// (reverses the source-partition component of delivery keys) so the
    /// differential harness can prove it detects a wrong merge order.
    #[doc(hidden)]
    pub fn perturb_merge_for_test(&mut self) {
        self.perturb_merge = true;
    }

    /// The window width this engine will advance by, if any link exists.
    pub fn min_lookahead(&self) -> Option<SimDuration> {
        self.min_lookahead
    }

    /// Run to completion with up to `threads` worker threads (1 executes the
    /// same windowed protocol inline — useful for differential tests that
    /// vary only the thread count).
    pub fn run(&mut self, threads: usize) -> RunStats {
        let mut stats = RunStats::default();
        self.init_partitions();
        loop {
            let horizon = self
                .partitions
                .iter()
                .filter_map(|p| p.queue.keys().next())
                .map(|k| k.time)
                .min();
            let Some(t) = horizon else { break };
            let end = match self.min_lookahead {
                Some(l) => SimTime(t.as_nanos().saturating_add(l.as_nanos())),
                None => SimTime::MAX,
            };
            let outbox = self.execute_window(threads, end, &mut stats);
            self.deliver(outbox);
            stats.windows += 1;
        }
        stats
    }

    /// Reference oracle: one global loop picking the smallest `(key,
    /// partition)` pair, executing a single event, delivering its
    /// cross-partition sends immediately. No windows, no threads — only the
    /// event key definition is shared with [`run`](ParallelEngine::run), so
    /// agreement between the two is evidence the windowed protocol preserves
    /// event order.
    pub fn run_sequential(&mut self) -> RunStats {
        let mut stats = RunStats::default();
        self.init_partitions();
        loop {
            let next = self
                .partitions
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.queue.keys().next().map(|k| (*k, i)))
                .min();
            let Some((key, i)) = next else { break };
            let mut outbox = Vec::new();
            let p = &mut self.partitions[i];
            let msg = p.queue.remove(&key).expect("key just observed");
            let Partition {
                id,
                lp,
                queue,
                local_seq,
                send_seq,
                links,
            } = p;
            let mut ctx = PartitionCtx {
                now: key.time,
                id: *id,
                local_seq,
                send_seq,
                links,
                queue,
                outbox: &mut outbox,
                _marker: std::marker::PhantomData,
            };
            lp.handle(key.time, msg, &mut ctx);
            stats.events += 1;
            stats.end = stats.end.max(key.time);
            self.deliver(outbox);
        }
        stats
    }

    /// Run every partition's `init` at `t = 0` (in id order) and deliver any
    /// cross-partition sends it produced.
    fn init_partitions(&mut self) {
        let mut outbox = Vec::new();
        for p in &mut self.partitions {
            let Partition {
                id,
                lp,
                queue,
                local_seq,
                send_seq,
                links,
            } = p;
            let mut ctx = PartitionCtx {
                now: SimTime::ZERO,
                id: *id,
                local_seq,
                send_seq,
                links,
                queue,
                outbox: &mut outbox,
                _marker: std::marker::PhantomData,
            };
            lp.init(&mut ctx);
        }
        self.deliver(outbox);
    }

    /// Execute the window `[.., end)` on every partition, claiming
    /// partitions from an atomic take-a-number queue when threaded.
    /// Returns the combined cross-partition outbox.
    fn execute_window(
        &mut self,
        threads: usize,
        end: SimTime,
        stats: &mut RunStats,
    ) -> Vec<CrossMsg> {
        if threads <= 1 || self.partitions.len() <= 1 {
            let mut outbox = Vec::new();
            for p in &mut self.partitions {
                let (n, last) = run_partition_window(p, end, &mut outbox);
                stats.events += n;
                stats.end = stats.end.max(last);
            }
            return outbox;
        }
        let slots: Vec<Mutex<&mut Partition<'a>>> =
            self.partitions.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let outbox: Mutex<Vec<CrossMsg>> = Mutex::new(Vec::new());
        let events = AtomicU64::new(0);
        let last_time = AtomicU64::new(stats.end.as_nanos());
        // Workers inherit the caller's (thread-local) default scheduler kind
        // so partitions that build an embedded `Engine` behave as if run
        // inline — the reference-sched differential CI job depends on this.
        let kind = default_scheduler();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(slots.len()) {
                scope.spawn(|| {
                    set_default_scheduler(kind);
                    let mut local_out = Vec::new();
                    let mut n = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let mut p = slots[i].lock().unwrap();
                        let (ran, last) = run_partition_window(&mut p, end, &mut local_out);
                        n += ran;
                        last_time.fetch_max(last.as_nanos(), Ordering::Relaxed);
                    }
                    outbox.lock().unwrap().extend(local_out);
                    events.fetch_add(n, Ordering::Relaxed);
                });
            }
        });
        stats.events += events.into_inner();
        stats.end = stats.end.max(SimTime(last_time.into_inner()));
        outbox.into_inner().unwrap()
    }

    /// Merge cross-partition messages into destination queues. The delivery
    /// key is intrinsic to each message, so the result is independent of the
    /// order workers appended to the outbox; the sort below only makes the
    /// insertion sequence (and any panic) deterministic too.
    fn deliver(&mut self, mut outbox: Vec<CrossMsg>) {
        outbox.sort_by_key(|m| (m.recv_time, m.src, m.src_seq));
        for m in outbox {
            let src = if self.perturb_merge {
                usize::MAX - m.src
            } else {
                m.src
            };
            let key = EventKey {
                time: m.recv_time,
                class: 1,
                src,
                seq: m.src_seq,
            };
            let prev = self.partitions[m.dest].queue.insert(key, m.msg);
            debug_assert!(prev.is_none(), "cross-event key collision");
        }
    }
}

/// Drain one partition's due events (strictly before `end`) in key order,
/// including follow-ups it schedules to itself inside the window. Returns
/// `(events executed, time of the last one)`.
fn run_partition_window(
    p: &mut Partition<'_>,
    end: SimTime,
    outbox: &mut Vec<CrossMsg>,
) -> (u64, SimTime) {
    let mut n = 0u64;
    let mut last = SimTime::ZERO;
    while let Some((&key, _)) = p.queue.iter().next() {
        if key.time >= end {
            break;
        }
        let msg = p.queue.remove(&key).expect("key just observed");
        let Partition {
            id,
            lp,
            queue,
            local_seq,
            send_seq,
            links,
        } = p;
        let mut ctx = PartitionCtx {
            now: key.time,
            id: *id,
            local_seq,
            send_seq,
            links,
            queue,
            outbox,
            _marker: std::marker::PhantomData,
        };
        lp.handle(key.time, msg, &mut ctx);
        n += 1;
        last = last.max(key.time);
    }
    (n, last)
}

/// Run `cells` fully independent jobs with up to `threads` workers and
/// return the results in cell order — the federation path behind the bench
/// harness's `--sim-threads`.
///
/// Each cell becomes one [`LogicalProcess`] with a single `t = 0` event in a
/// link-free topology (infinite lookahead → one barrier window), so output
/// is byte-identical to running the cells inline regardless of thread
/// count. With one thread (or one cell) the jobs run inline on the caller's
/// thread, preserving thread-local state exactly like a sequential sweep.
pub fn run_cells<T, F>(threads: usize, cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || cells <= 1 {
        return (0..cells).map(f).collect();
    }
    struct CellLp<'a, T, F> {
        index: usize,
        f: &'a F,
        slot: &'a Mutex<Option<T>>,
    }
    impl<T: Send, F: Fn(usize) -> T + Sync> LogicalProcess for CellLp<'_, T, F> {
        fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
            ctx.send_self(SimDuration::ZERO, Box::new(()));
        }
        fn handle(&mut self, _now: SimTime, _msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {
            *self.slot.lock().unwrap() = Some((self.f)(self.index));
        }
    }
    let slots: Vec<Mutex<Option<T>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let mut topo = Topology::new();
    for (index, slot) in slots.iter().enumerate() {
        topo.add_partition(Box::new(CellLp { index, f: &f, slot }));
    }
    let mut engine = ParallelEngine::new(topo);
    engine.run(threads);
    drop(engine);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every cell runs exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Records every `(now, tag)` it sees; sends `count` messages onward.
    struct Echo {
        log: Arc<Mutex<Vec<(u64, u64)>>>,
        peer: Option<PartitionId>,
        remaining: u64,
        delay: SimDuration,
    }
    impl LogicalProcess for Echo {
        fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
            if self.remaining > 0 {
                ctx.send_self(SimDuration::ZERO, Box::new(0u64));
            }
        }
        fn handle(&mut self, now: SimTime, msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
            let tag = *msg.downcast::<u64>().unwrap();
            self.log.lock().unwrap().push((now.as_nanos(), tag));
            if let Some(peer) = self.peer {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(peer, self.delay, Box::new(tag + 1));
                }
            }
        }
    }

    fn ping_pong(threads: Option<usize>) -> Vec<(u64, u64)> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut topo = Topology::new();
        let a = topo.add_partition(Box::new(Echo {
            log: log.clone(),
            peer: Some(PartitionId(1)),
            remaining: 5,
            delay: SimDuration::from_nanos(10),
        }));
        let b = topo.add_partition(Box::new(Echo {
            log: log.clone(),
            peer: Some(PartitionId(0)),
            remaining: 5,
            delay: SimDuration::from_nanos(10),
        }));
        topo.connect(a, b, SimDuration::from_nanos(10));
        topo.connect(b, a, SimDuration::from_nanos(10));
        let mut engine = ParallelEngine::new(topo);
        match threads {
            Some(t) => engine.run(t),
            None => engine.run_sequential(),
        };
        let mut out = log.lock().unwrap().clone();
        // The shared log's append order is not deterministic under threads;
        // sort to compare the (time, tag) multiset + per-time ordering.
        out.sort_unstable();
        out
    }

    #[test]
    fn windowed_matches_sequential_on_ping_pong() {
        let seq = ping_pong(None);
        assert!(!seq.is_empty());
        for t in [1, 2, 4, 8] {
            assert_eq!(ping_pong(Some(t)), seq, "threads={t}");
        }
    }

    #[test]
    #[should_panic(expected = "violates link lookahead")]
    fn undercutting_lookahead_panics() {
        struct Bad;
        impl LogicalProcess for Bad {
            fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
                ctx.send_self(SimDuration::ZERO, Box::new(()));
            }
            fn handle(&mut self, _now: SimTime, _msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
                ctx.send(PartitionId(1), SimDuration::from_nanos(5), Box::new(()));
            }
        }
        struct Sink;
        impl LogicalProcess for Sink {
            fn handle(&mut self, _now: SimTime, _msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {}
        }
        let mut topo = Topology::new();
        let a = topo.add_partition(Box::new(Bad));
        let b = topo.add_partition(Box::new(Sink));
        topo.connect(a, b, SimDuration::from_nanos(10));
        ParallelEngine::new(topo).run(1);
    }

    #[test]
    #[should_panic(expected = "has no link")]
    fn sending_without_a_link_panics() {
        struct NoLink;
        impl LogicalProcess for NoLink {
            fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
                ctx.send_self(SimDuration::ZERO, Box::new(()));
            }
            fn handle(&mut self, _now: SimTime, _msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
                ctx.send(PartitionId(1), SimDuration::from_nanos(5), Box::new(()));
            }
        }
        struct Sink;
        impl LogicalProcess for Sink {
            fn handle(&mut self, _now: SimTime, _msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {}
        }
        let mut topo = Topology::new();
        topo.add_partition(Box::new(NoLink));
        topo.add_partition(Box::new(Sink));
        ParallelEngine::new(topo).run(1);
    }

    #[test]
    #[should_panic(expected = "zero lookahead")]
    fn zero_lookahead_link_panics() {
        struct Sink;
        impl LogicalProcess for Sink {
            fn handle(&mut self, _now: SimTime, _msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {}
        }
        let mut topo = Topology::new();
        let a = topo.add_partition(Box::new(Sink));
        let b = topo.add_partition(Box::new(Sink));
        topo.connect(a, b, SimDuration::ZERO);
    }

    /// Two sources send same-instant messages to one sink; the sink's
    /// observed order must be by source id — and the perturbation hook must
    /// visibly flip it (this is what the differential counter-test relies
    /// on).
    fn same_tick_order(perturb: bool) -> Vec<u64> {
        struct Source {
            me: u64,
            sink: PartitionId,
        }
        impl LogicalProcess for Source {
            fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
                ctx.send_self(SimDuration::ZERO, Box::new(()));
            }
            fn handle(&mut self, _now: SimTime, _msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
                ctx.send(self.sink, SimDuration::from_nanos(10), Box::new(self.me));
            }
        }
        struct SinkLp {
            log: Arc<Mutex<Vec<u64>>>,
        }
        impl LogicalProcess for SinkLp {
            fn handle(&mut self, _now: SimTime, msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {
                self.log
                    .lock()
                    .unwrap()
                    .push(*msg.downcast::<u64>().unwrap());
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut topo = Topology::new();
        let s0 = topo.add_partition(Box::new(Source {
            me: 0,
            sink: PartitionId(2),
        }));
        let s1 = topo.add_partition(Box::new(Source {
            me: 1,
            sink: PartitionId(2),
        }));
        let sink = topo.add_partition(Box::new(SinkLp { log: log.clone() }));
        topo.connect(s0, sink, SimDuration::from_nanos(10));
        topo.connect(s1, sink, SimDuration::from_nanos(10));
        let mut engine = ParallelEngine::new(topo);
        if perturb {
            engine.perturb_merge_for_test();
        }
        engine.run(4);
        let out = log.lock().unwrap().clone();
        out
    }

    #[test]
    fn same_tick_cross_sends_order_by_source() {
        assert_eq!(same_tick_order(false), vec![0, 1]);
    }

    #[test]
    fn merge_perturbation_is_observable() {
        assert_eq!(same_tick_order(true), vec![1, 0]);
    }

    #[test]
    fn run_cells_preserves_cell_order_at_any_thread_count() {
        let f = |i: usize| (i as u64 + 1) * 31;
        let seq: Vec<u64> = (0..13).map(f).collect();
        for t in [1, 2, 4, 8] {
            assert_eq!(run_cells(t, 13, f), seq, "threads={t}");
        }
    }

    #[test]
    fn run_cells_single_thread_runs_inline() {
        let caller = std::thread::current().id();
        let out = run_cells(1, 3, |i| {
            assert_eq!(std::thread::current().id(), caller);
            i
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn stats_count_events_and_windows() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut topo = Topology::new();
        let a = topo.add_partition(Box::new(Echo {
            log: log.clone(),
            peer: Some(PartitionId(1)),
            remaining: 3,
            delay: SimDuration::from_nanos(10),
        }));
        let b = topo.add_partition(Box::new(Echo {
            log: log.clone(),
            peer: Some(PartitionId(0)),
            remaining: 3,
            delay: SimDuration::from_nanos(10),
        }));
        topo.connect(a, b, SimDuration::from_nanos(10));
        topo.connect(b, a, SimDuration::from_nanos(10));
        let mut engine = ParallelEngine::new(topo);
        assert_eq!(engine.min_lookahead(), Some(SimDuration::from_nanos(10)));
        let stats = engine.run(2);
        // Both sides open at t=0 and volley 3 sends each: every partition
        // handles events at t = 0, 10, 20, 30 → 8 events over 4 windows.
        assert_eq!(stats.events, 8);
        assert_eq!(stats.windows, 4);
        assert_eq!(stats.end, SimTime(30));
    }
}
