//! Deterministic random numbers for simulations.
//!
//! A thin wrapper over `rand`'s `SmallRng` seeded explicitly, so every
//! simulation run is reproducible from its seed. Workloads use this to
//! generate the integers they sort and the bodies they simulate.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic simulation RNG.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Seed a new RNG. The same seed always yields the same stream.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle should move elements");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
