//! Deterministic random numbers for simulations.
//!
//! A self-contained xoshiro256++ generator seeded explicitly (via a
//! splitmix64 expansion of the seed), so every simulation run is
//! reproducible from its seed with no external dependencies. Workloads
//! use this to generate the integers they sort and the bodies they
//! simulate.

/// Deterministic simulation RNG (xoshiro256++).
pub struct SimRng {
    s: [u64; 4],
}

/// splitmix64 step: used to expand a 64-bit seed into the full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed a new RNG. The same seed always yields the same stream.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection sampling over the largest multiple of `n` that fits
        // in u64, so the result is exactly uniform.
        let zone = u64::MAX - (u64::MAX.wrapping_sub(n.wrapping_sub(1)) % n);
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle should move elements");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
