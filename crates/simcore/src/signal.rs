//! Completion flags and counters for driving the engine.
//!
//! A [`Signal`] is a one-shot boolean flag shared between the code that posts
//! asynchronous work and the loop that runs the engine waiting for it — the
//! simulation analogue of a kernel completion. [`Latch`] waits for N events
//! (e.g. a block request split into several physical requests, which is
//! exactly what HPBD's multi-server splitting produces). [`Counter`] is a
//! shared monotonically adjustable integer used for credits and statistics.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// One-shot completion flag. Cloning shares the flag.
#[derive(Clone)]
pub struct Signal {
    name: &'static str,
    set: Rc<Cell<bool>>,
}

impl Signal {
    /// Create an unset signal. The name appears in deadlock diagnostics.
    pub fn new(name: &'static str) -> Signal {
        Signal {
            name,
            set: Rc::new(Cell::new(false)),
        }
    }

    /// Fire the signal. Idempotent.
    #[inline]
    pub fn set(&self) {
        self.set.set(true);
    }

    /// Has the signal fired?
    #[inline]
    pub fn is_set(&self) -> bool {
        self.set.get()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal({}={})", self.name, self.is_set())
    }
}

/// Counts down from N; `is_set` once it reaches zero. Used when one logical
/// operation fans out into several asynchronous completions.
#[derive(Clone)]
pub struct Latch {
    remaining: Rc<Cell<u64>>,
    signal: Signal,
}

impl Latch {
    /// A latch that completes after `count` calls to [`Latch::count_down`].
    /// A zero count is already complete.
    pub fn new(name: &'static str, count: u64) -> Latch {
        let signal = Signal::new(name);
        if count == 0 {
            signal.set();
        }
        Latch {
            remaining: Rc::new(Cell::new(count)),
            signal,
        }
    }

    /// Record one completion. Panics on underflow — counting down a finished
    /// latch means an I/O completed twice, which is a protocol bug.
    pub fn count_down(&self) {
        let r = self.remaining.get();
        assert!(
            r > 0,
            "latch `{}` counted down below zero",
            self.signal.name()
        );
        self.remaining.set(r - 1);
        if r == 1 {
            self.signal.set();
        }
    }

    /// Completions still outstanding.
    pub fn remaining(&self) -> u64 {
        self.remaining.get()
    }

    /// The underlying signal, for `Engine::run_until_signal`.
    pub fn signal(&self) -> &Signal {
        &self.signal
    }

    /// Whether all completions have arrived.
    pub fn is_complete(&self) -> bool {
        self.signal.is_set()
    }
}

/// A shared integer cell (credits, in-flight counts, statistics).
#[derive(Clone, Default)]
pub struct Counter {
    value: Rc<Cell<u64>>,
}

impl Counter {
    /// A counter starting at `initial`.
    pub fn new(initial: u64) -> Counter {
        Counter {
            value: Rc::new(Cell::new(initial)),
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.get()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get() + n);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract `n`, panicking on underflow.
    #[inline]
    pub fn sub(&self, n: u64) {
        let v = self.value.get();
        assert!(v >= n, "counter underflow: {v} - {n}");
        self.value.set(v - n);
    }

    /// Set an absolute value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.set(v);
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_clones_share_state() {
        let a = Signal::new("x");
        let b = a.clone();
        assert!(!b.is_set());
        a.set();
        assert!(b.is_set());
    }

    #[test]
    fn signal_set_is_idempotent() {
        let s = Signal::new("x");
        s.set();
        s.set();
        assert!(s.is_set());
    }

    #[test]
    fn latch_fires_after_n() {
        let l = Latch::new("io", 3);
        assert!(!l.is_complete());
        l.count_down();
        l.count_down();
        assert!(!l.is_complete());
        assert_eq!(l.remaining(), 1);
        l.count_down();
        assert!(l.is_complete());
    }

    #[test]
    fn zero_latch_is_complete() {
        assert!(Latch::new("none", 0).is_complete());
    }

    #[test]
    #[should_panic(expected = "counted down below zero")]
    fn latch_underflow_panics() {
        let l = Latch::new("io", 1);
        l.count_down();
        l.count_down();
    }

    #[test]
    fn counter_arithmetic() {
        let c = Counter::new(5);
        c.add(3);
        c.sub(2);
        c.inc();
        assert_eq!(c.get(), 7);
        let d = c.clone();
        d.set(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn counter_underflow_panics() {
        Counter::new(0).sub(1);
    }
}
