//! Virtual time types.
//!
//! The simulation measures time in integer nanoseconds. Two newtypes keep
//! instants and spans from being mixed up: [`SimTime`] is an absolute instant
//! on the virtual clock, [`SimDuration`] is a span. Arithmetic between them
//! follows the same rules as `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual clock, in nanoseconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed span since `earlier`; saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a span from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Build a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a span from fractional seconds, rounding to nanoseconds.
    /// Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime(100) + SimDuration::from_nanos(50);
        assert_eq!(t, SimTime(150));
    }

    #[test]
    fn time_difference_is_duration() {
        assert_eq!(SimTime(500) - SimTime(200), SimDuration(300));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(10).since(SimTime(20)), SimDuration::ZERO);
        assert_eq!(SimTime(20).since(SimTime(10)), SimDuration(10));
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_micros(3), SimDuration(3_000));
        assert_eq!(SimDuration::from_millis(2), SimDuration(2_000_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000_000));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000_000));
    }

    #[test]
    fn duration_arith() {
        let mut d = SimDuration(10);
        d += SimDuration(5);
        assert_eq!(d, SimDuration(15));
        d -= SimDuration(3);
        assert_eq!(d, SimDuration(12));
        assert_eq!(d * 2, SimDuration(24));
        assert_eq!(d / 4, SimDuration(3));
        assert_eq!(d.saturating_sub(SimDuration(100)), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration(5)), "5ns");
        assert_eq!(format!("{}", SimDuration(5_000)), "5.000us");
        assert_eq!(format!("{}", SimDuration(5_000_000)), "5.000ms");
        assert_eq!(format!("{}", SimDuration(5_000_000_000)), "5.000s");
    }

    #[test]
    fn sum_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration(10));
    }
}
