//! Event-queue implementations behind [`Engine`](crate::Engine).
//!
//! Two interchangeable schedulers live here, both maintaining the same
//! contract — events pop in strict `(time, seq)` order, where `seq` is the
//! submission counter, so ties break by submission order:
//!
//! * [`TimingWheel`] — the production scheduler. A flat window of
//!   `WHEEL_SLOTS` one-nanosecond slots starting at `base`, backed by a
//!   two-level occupancy bitmap for O(1) earliest-slot lookup, with a
//!   slab of reusable event nodes (no per-event heap allocation beyond the
//!   boxed closure itself) and an overflow binary heap for events beyond
//!   the window. When the window drains, the wheel *re-anchors* at the
//!   overflow minimum and promotes every overflow event inside the new
//!   window, in heap order — which is exactly `(time, seq)` order, so slot
//!   FIFOs stay sequence-sorted.
//! * [`ReferenceHeap`] — the seed implementation (a plain
//!   `BinaryHeap<Scheduled>`), kept as a differential oracle. The
//!   `reference-sched` cargo feature flips the engine default to this
//!   scheduler so any run can be replayed against it.
//!
//! ## Determinism argument
//!
//! With 1 ns slots, every event in a slot shares one timestamp, and slot
//! FIFOs only ever receive events in increasing `seq` (direct pushes are
//! sequenced by the engine's counter; promotions happen only into an empty
//! wheel and arrive in heap-sorted `(time, seq)` order). The overflow heap
//! orders by `(time, seq)` directly. The pop path compares the wheel head
//! and the overflow head by `(time, seq)` and takes the smaller, so the
//! merged stream is a stable sort by `(time, seq)` — identical, event for
//! event, to the reference heap.
//!
//! Cancellation is lazy: cancelling drops the closure immediately (so
//! captured resources release deterministically) and leaves a tombstone
//! node that is skipped and recycled when it reaches the head of its
//! structure.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A boxed event closure.
pub(crate) type Action = Box<dyn FnOnce()>;

/// Number of 1 ns slots in the wheel window (~65.5 µs horizon).
const WHEEL_SLOTS: usize = 1 << 16;
/// 64-bit occupancy words covering the slots.
const WORDS: usize = WHEEL_SLOTS / 64;
/// Second-level summary words (one bit per occupancy word).
const SUMMARY_WORDS: usize = WORDS / 64;

const NIL: u32 = u32::MAX;

/// Handle to a cancellable scheduled event.
///
/// Returned by [`Engine::schedule_cancellable_at`] and friends; pass it to
/// [`Engine::cancel`]. Stale ids (event already ran, already cancelled, or
/// the node was recycled) are detected via a generation counter and the
/// cancel becomes a no-op.
///
/// [`Engine::schedule_cancellable_at`]: crate::Engine::schedule_cancellable_at
/// [`Engine::cancel`]: crate::Engine::cancel
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

impl EventId {
    fn from_seq(seq: u64) -> EventId {
        EventId {
            idx: seq as u32,
            gen: (seq >> 32) as u32,
        }
    }

    fn to_seq(self) -> u64 {
        (self.gen as u64) << 32 | self.idx as u64
    }
}

/// Slab node: one scheduled event. `next` links the slot FIFO.
struct Node {
    at: u64,
    seq: u64,
    gen: u32,
    next: u32,
    action: Option<Action>,
}

#[derive(Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

const EMPTY_SLOT: Slot = Slot {
    head: NIL,
    tail: NIL,
};

/// Overflow entry ordered so the *earliest* `(at, seq)` pops first.
struct OflEntry {
    at: u64,
    seq: u64,
    node: u32,
}

impl PartialEq for OflEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for OflEntry {}
impl PartialOrd for OflEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OflEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Hierarchical timing wheel with slab-allocated nodes and an overflow heap.
pub(crate) struct TimingWheel {
    /// Absolute time (ns) of slot 0. Only moves forward, and only to values
    /// at or below the engine clock, so `at >= base` for every push.
    base: u64,
    slots: Box<[Slot]>,
    words: Box<[u64]>,
    summary: [u64; SUMMARY_WORDS],
    overflow: BinaryHeap<OflEntry>,
    nodes: Vec<Node>,
    free_head: u32,
    /// Live (non-cancelled) pending events.
    live: usize,
}

impl TimingWheel {
    pub(crate) fn new() -> TimingWheel {
        TimingWheel {
            base: 0,
            slots: vec![EMPTY_SLOT; WHEEL_SLOTS].into_boxed_slice(),
            words: vec![0u64; WORDS].into_boxed_slice(),
            summary: [0u64; SUMMARY_WORDS],
            overflow: BinaryHeap::new(),
            nodes: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }

    fn alloc_node(&mut self, at: u64, seq: u64, action: Action) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.action = Some(action);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                at,
                seq,
                gen: 0,
                next: NIL,
                action: Some(action),
            });
            idx
        }
    }

    /// Recycle a node: bump its generation (invalidating outstanding
    /// [`EventId`]s) and push it onto the free list.
    fn free_node(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        debug_assert!(node.action.is_none(), "freeing a live node");
        node.gen = node.gen.wrapping_add(1);
        node.next = self.free_head;
        self.free_head = idx;
    }

    fn insert_slot(&mut self, slot: usize, idx: u32) {
        let s = &mut self.slots[slot];
        if s.tail == NIL {
            s.head = idx;
            s.tail = idx;
            self.words[slot >> 6] |= 1u64 << (slot & 63);
            self.summary[slot >> 12] |= 1u64 << ((slot >> 6) & 63);
        } else {
            let tail = s.tail;
            s.tail = idx;
            self.nodes[tail as usize].next = idx;
        }
    }

    /// Unlink the head of `slot`, clearing occupancy bits when it empties.
    fn pop_slot_head(&mut self, slot: usize) -> u32 {
        let s = &mut self.slots[slot];
        let idx = s.head;
        debug_assert_ne!(idx, NIL, "popping an empty slot");
        let next = self.nodes[idx as usize].next;
        s.head = next;
        if next == NIL {
            s.tail = NIL;
            let word = slot >> 6;
            self.words[word] &= !(1u64 << (slot & 63));
            if self.words[word] == 0 {
                self.summary[slot >> 12] &= !(1u64 << ((slot >> 6) & 63));
            }
        }
        idx
    }

    /// Earliest occupied slot, via the two-level bitmap.
    fn min_slot(&self) -> Option<usize> {
        for (si, &sw) in self.summary.iter().enumerate() {
            if sw != 0 {
                let word = (si << 6) + sw.trailing_zeros() as usize;
                let bits = self.words[word];
                debug_assert_ne!(bits, 0, "summary bit set on empty word");
                return Some((word << 6) + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    fn wheel_is_empty(&self) -> bool {
        self.summary.iter().all(|&w| w == 0)
    }

    /// Move the window to start at `at` (callers guarantee the wheel is
    /// empty and `at` never exceeds the engine clock's next stop), then
    /// promote every overflow event now inside the window. Heap pops come
    /// out in `(time, seq)` order, so slot FIFOs stay sequence-sorted.
    fn reanchor(&mut self, at: u64) {
        debug_assert!(self.wheel_is_empty(), "re-anchoring a non-empty wheel");
        debug_assert!(at >= self.base, "wheel base must not move backwards");
        self.base = at;
        let horizon = at + WHEEL_SLOTS as u64;
        while let Some(top) = self.overflow.peek() {
            if top.at >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            if self.nodes[entry.node as usize].action.is_none() {
                self.free_node(entry.node);
            } else {
                self.insert_slot((entry.at - at) as usize, entry.node);
            }
        }
    }

    /// Drop tombstoned (cancelled) nodes sitting at the head of either
    /// structure so peeks and pops see live events only.
    fn prune(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if self.nodes[top.node as usize].action.is_some() {
                break;
            }
            let node = self.overflow.pop().expect("peeked entry").node;
            self.free_node(node);
        }
        while let Some(slot) = self.min_slot() {
            let idx = self.slots[slot].head;
            if self.nodes[idx as usize].action.is_some() {
                break;
            }
            self.pop_slot_head(slot);
            self.free_node(idx);
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, action: Action) -> EventId {
        let idx = self.alloc_node(at.0, seq, action);
        let id = EventId {
            idx,
            gen: self.nodes[idx as usize].gen,
        };
        // `at >= base` always holds (base trails the clock), so a wrapping
        // subtraction that lands outside the window routes to overflow.
        let offset = at.0.wrapping_sub(self.base);
        if offset < WHEEL_SLOTS as u64 {
            self.insert_slot(offset as usize, idx);
        } else {
            self.overflow.push(OflEntry {
                at: at.0,
                seq,
                node: idx,
            });
        }
        self.live += 1;
        id
    }

    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        match self.nodes.get_mut(id.idx as usize) {
            Some(node) if node.gen == id.gen && node.action.is_some() => {
                // Drop the closure now so captured resources release
                // deterministically; the node is recycled lazily.
                node.action = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Pop the earliest event if its time is `<= deadline`.
    pub(crate) fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, Action)> {
        loop {
            self.prune();
            let wheel = self.min_slot().map(|slot| {
                let idx = self.slots[slot].head;
                let seq = self.nodes[idx as usize].seq;
                (self.base + slot as u64, seq, slot, idx)
            });
            match (wheel, self.overflow.peek()) {
                (Some((wt, wseq, slot, idx)), ofl) => {
                    // The overflow head wins only in the rare case where the
                    // window advanced past an old overflow event's time.
                    if let Some(top) = ofl {
                        if (top.at, top.seq) < (wt, wseq) {
                            if top.at > deadline.0 {
                                return None;
                            }
                            let entry = self.overflow.pop().expect("peeked entry");
                            return Some((SimTime(entry.at), self.take_action(entry.node)));
                        }
                    }
                    if wt > deadline.0 {
                        return None;
                    }
                    self.pop_slot_head(slot);
                    return Some((SimTime(wt), self.take_action(idx)));
                }
                (None, Some(top)) => {
                    if top.at > deadline.0 {
                        return None;
                    }
                    // Window drained: re-anchor at the overflow minimum and
                    // retry — the promoted events now sit in the wheel.
                    let at = top.at;
                    self.reanchor(at);
                }
                (None, None) => return None,
            }
        }
    }

    fn take_action(&mut self, idx: u32) -> Action {
        let action = self.nodes[idx as usize]
            .action
            .take()
            .expect("popping a tombstone");
        self.free_node(idx);
        self.live -= 1;
        action
    }

    /// Timestamp of the earliest live event, pruning tombstones on the way.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.prune();
        let wheel = self.min_slot().map(|slot| self.base + slot as u64);
        let ofl = self.overflow.peek().map(|e| e.at);
        match (wheel, ofl) {
            (Some(w), Some(o)) => Some(SimTime(w.min(o))),
            (Some(w), None) => Some(SimTime(w)),
            (None, Some(o)) => Some(SimTime(o)),
            (None, None) => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }
}

/// The seed scheduler: a plain binary heap of boxed events, kept as the
/// differential oracle behind the `reference-sched` feature.
pub(crate) struct ReferenceHeap {
    heap: BinaryHeap<Scheduled>,
    /// Actions of still-pending events, keyed by seq. Cancel removes the
    /// entry (dropping the closure immediately, matching the wheel); the
    /// heap entry becomes a tombstone skimmed off lazily.
    actions: std::collections::BTreeMap<u64, Action>,
}

struct Scheduled {
    at: SimTime,
    seq: u64,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl ReferenceHeap {
    pub(crate) fn new() -> ReferenceHeap {
        ReferenceHeap {
            heap: BinaryHeap::new(),
            actions: std::collections::BTreeMap::new(),
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, action: Action) -> EventId {
        self.heap.push(Scheduled { at, seq });
        self.actions.insert(seq, action);
        EventId::from_seq(seq)
    }

    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        self.actions.remove(&id.to_seq()).is_some()
    }

    fn prune(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.actions.contains_key(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    pub(crate) fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, Action)> {
        self.prune();
        match self.heap.peek() {
            Some(top) if top.at <= deadline => {
                let ev = self.heap.pop().expect("peeked event");
                let action = self.actions.remove(&ev.seq).expect("pruned tombstone");
                Some((ev.at, action))
            }
            _ => None,
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.prune();
        self.heap.peek().map(|s| s.at)
    }

    pub(crate) fn len(&self) -> usize {
        self.actions.len()
    }
}

/// Runtime dispatch between the two schedulers. An enum (not a trait
/// object) so the hot pop path stays monomorphic and branch-predictable.
pub(crate) enum EventQueue {
    Wheel(TimingWheel),
    Heap(ReferenceHeap),
}

impl EventQueue {
    pub(crate) fn push(&mut self, at: SimTime, seq: u64, action: Action) -> EventId {
        match self {
            EventQueue::Wheel(w) => w.push(at, seq, action),
            EventQueue::Heap(h) => h.push(at, seq, action),
        }
    }

    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        match self {
            EventQueue::Wheel(w) => w.cancel(id),
            EventQueue::Heap(h) => h.cancel(id),
        }
    }

    pub(crate) fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, Action)> {
        match self {
            EventQueue::Wheel(w) => w.pop_due(deadline),
            EventQueue::Heap(h) => h.pop_due(deadline),
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Wheel(w) => w.peek_time(),
            EventQueue::Heap(h) => h.peek_time(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    const MAX: SimTime = SimTime(u64::MAX);

    fn tagged(q: &mut TimingWheel, at: u64, seq: u64, log: &Rc<RefCell<Vec<u64>>>) -> EventId {
        let log = log.clone();
        q.push(
            SimTime(at),
            seq,
            Box::new(move || log.borrow_mut().push(seq)),
        )
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        tagged(&mut q, 50, 0, &log);
        tagged(&mut q, 10, 1, &log);
        tagged(&mut q, 10, 2, &log);
        tagged(&mut q, 5, 3, &log);
        while let Some((_, a)) = q.pop_due(MAX) {
            a();
        }
        assert_eq!(*log.borrow(), vec![3, 1, 2, 0]);
    }

    #[test]
    fn far_events_overflow_and_promote() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        // Far beyond the 65.5 µs window: must route via the overflow heap.
        tagged(&mut q, 10_000_000, 0, &log);
        tagged(&mut q, 9_000_000, 1, &log);
        tagged(&mut q, 100, 2, &log);
        let (at, a) = q.pop_due(MAX).unwrap();
        assert_eq!(at, SimTime(100));
        a();
        let (at, a) = q.pop_due(MAX).unwrap();
        assert_eq!(at, SimTime(9_000_000));
        a();
        let (at, a) = q.pop_due(MAX).unwrap();
        assert_eq!(at, SimTime(10_000_000));
        a();
        assert_eq!(*log.borrow(), vec![2, 1, 0]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn deadline_is_inclusive() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        tagged(&mut q, 10, 0, &log);
        tagged(&mut q, 11, 1, &log);
        assert!(q.pop_due(SimTime(9)).is_none());
        let (at, a) = q.pop_due(SimTime(10)).unwrap();
        assert_eq!(at, SimTime(10));
        a();
        assert!(q.pop_due(SimTime(10)).is_none());
        assert_eq!(q.peek_time(), Some(SimTime(11)));
    }

    #[test]
    fn cancel_skips_event_and_invalidates_id() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let a = tagged(&mut q, 10, 0, &log);
        tagged(&mut q, 20, 1, &log);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel must fail");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(20)));
        let (at, act) = q.pop_due(MAX).unwrap();
        assert_eq!(at, SimTime(20));
        act();
        assert_eq!(*log.borrow(), vec![1]);
    }

    #[test]
    fn cancelled_overflow_event_is_skipped() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let far = tagged(&mut q, 1_000_000, 0, &log);
        tagged(&mut q, 2_000_000, 1, &log);
        assert!(q.cancel(far));
        let (at, a) = q.pop_due(MAX).unwrap();
        assert_eq!(at, SimTime(2_000_000));
        a();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn slab_nodes_are_recycled() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for round in 0..10u64 {
            for i in 0..100u64 {
                tagged(&mut q, round * 1000 + i, round * 100 + i, &log);
            }
            while let Some((_, a)) = q.pop_due(MAX) {
                a();
            }
        }
        // 1000 events total, but the slab never needed more than one round's
        // worth of nodes.
        assert!(q.nodes.len() <= 100, "slab grew to {}", q.nodes.len());
        assert_eq!(log.borrow().len(), 1000);
    }

    #[test]
    fn stale_id_after_recycle_does_not_cancel() {
        let mut q = TimingWheel::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let id = tagged(&mut q, 5, 0, &log);
        let (_, a) = q.pop_due(MAX).unwrap();
        a();
        // The node is recycled for a new event; the stale id must not hit it.
        tagged(&mut q, 10, 1, &log);
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reference_heap_matches_on_interleaved_ops() {
        let mut w = TimingWheel::new();
        let mut h = ReferenceHeap::new();
        let wlog: Rc<RefCell<Vec<u64>>> = Rc::default();
        let hlog: Rc<RefCell<Vec<u64>>> = Rc::default();
        let times = [70_000u64, 3, 70_000, 500, 3, 1_000_000, 0, 65_535, 65_536];
        let mut wids = Vec::new();
        let mut hids = Vec::new();
        for (seq, &t) in times.iter().enumerate() {
            wids.push(tagged(&mut w, t, seq as u64, &wlog));
            let hlog2 = hlog.clone();
            let s = seq as u64;
            hids.push(h.push(SimTime(t), s, Box::new(move || hlog2.borrow_mut().push(s))));
        }
        assert!(w.cancel(wids[2]));
        assert!(h.cancel(hids[2]));
        loop {
            let wt = w.peek_time();
            let ht = h.peek_time();
            assert_eq!(wt, ht);
            match (w.pop_due(MAX), h.pop_due(MAX)) {
                (Some((wa, wf)), Some((ha, hf))) => {
                    assert_eq!(wa, ha);
                    wf();
                    hf();
                }
                (None, None) => break,
                other => panic!("divergence: {:?}", other.0.is_some()),
            }
        }
        assert_eq!(*wlog.borrow(), *hlog.borrow());
    }
}
