//! Serially-reusable timing resources.
//!
//! A [`Resource`] models hardware that serves one task at a time — a CPU
//! core doing memcpy, an HCA DMA engine, the wire of a network port, a disk
//! head. Reserving a span returns the FIFO-queued start and end instants;
//! callers then schedule their completion events at the returned end time.
//!
//! This "timestamp bumping" style models queueing delay and pipelining
//! without needing a process abstraction: the HPBD server's RDMA/memcpy
//! overlap (paper §4.2.1) emerges from reserving the DMA and CPU resources
//! independently, and the contention between two concurrent quicksort
//! instances in Figure 9 emerges from both reserving the same client CPU.

use crate::time::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// A single-server FIFO resource.
#[derive(Clone)]
pub struct Resource {
    name: &'static str,
    next_free: Rc<Cell<SimTime>>,
    busy_total: Rc<Cell<SimDuration>>,
    reservations: Rc<Cell<u64>>,
}

impl Resource {
    /// A resource that is free from t = 0.
    pub fn new(name: &'static str) -> Resource {
        Resource {
            name,
            next_free: Rc::new(Cell::new(SimTime::ZERO)),
            busy_total: Rc::new(Cell::new(SimDuration::ZERO)),
            reservations: Rc::new(Cell::new(0)),
        }
    }

    /// Reserve `dur` starting no earlier than `earliest`. Returns
    /// `(start, end)` after FIFO queueing behind earlier reservations.
    pub fn reserve(&self, earliest: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let start = self.next_free.get().max(earliest);
        let end = start + dur;
        self.next_free.set(end);
        self.busy_total.set(self.busy_total.get() + dur);
        self.reservations.set(self.reservations.get() + 1);
        (start, end)
    }

    /// Instant at which the resource becomes free given current bookings.
    pub fn next_free(&self) -> SimTime {
        self.next_free.get()
    }

    /// Total booked busy time (utilization numerator).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total.get()
    }

    /// Number of reservations made.
    pub fn reservations(&self) -> u64 {
        self.reservations.get()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resource")
            .field("name", &self.name)
            .field("next_free", &self.next_free.get())
            .field("busy_total", &self.busy_total.get())
            .finish()
    }
}

/// A k-server resource (e.g. the dual-CPU node of the paper's testbed).
/// Each reservation is placed on the server that frees up first.
#[derive(Clone)]
pub struct MultiResource {
    name: &'static str,
    servers: Rc<RefCell<Vec<SimTime>>>,
    busy_total: Rc<Cell<SimDuration>>,
}

impl MultiResource {
    /// A pool of `k` identical servers, all free from t = 0.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(name: &'static str, k: usize) -> MultiResource {
        assert!(k > 0, "MultiResource needs at least one server");
        MultiResource {
            name,
            servers: Rc::new(RefCell::new(vec![SimTime::ZERO; k])),
            busy_total: Rc::new(Cell::new(SimDuration::ZERO)),
        }
    }

    /// Reserve `dur` on the earliest-available server, starting no earlier
    /// than `earliest`. Returns `(start, end)`.
    pub fn reserve(&self, earliest: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let mut servers = self.servers.borrow_mut();
        // Earliest-free server; ties broken by index for determinism.
        let (idx, _) = servers
            .iter()
            .enumerate()
            .min_by_key(|&(i, t)| (*t, i))
            .expect("at least one server");
        let start = servers[idx].max(earliest);
        let end = start + dur;
        servers[idx] = end;
        self.busy_total.set(self.busy_total.get() + dur);
        (start, end)
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers.borrow().len()
    }

    /// Total booked busy time across all servers.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total.get()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for MultiResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiResource")
            .field("name", &self.name)
            .field("servers", &*self.servers.borrow())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let r = Resource::new("cpu");
        let (s, e) = r.reserve(SimTime(100), SimDuration(50));
        assert_eq!((s, e), (SimTime(100), SimTime(150)));
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let r = Resource::new("cpu");
        r.reserve(SimTime(0), SimDuration(100));
        let (s, e) = r.reserve(SimTime(10), SimDuration(20));
        assert_eq!((s, e), (SimTime(100), SimTime(120)));
    }

    #[test]
    fn gap_leaves_idle_time() {
        let r = Resource::new("cpu");
        r.reserve(SimTime(0), SimDuration(10));
        let (s, _) = r.reserve(SimTime(500), SimDuration(10));
        assert_eq!(s, SimTime(500));
        assert_eq!(r.busy_total(), SimDuration(20));
        assert_eq!(r.reservations(), 2);
    }

    #[test]
    fn multi_resource_uses_both_servers() {
        let m = MultiResource::new("cpus", 2);
        let (s1, e1) = m.reserve(SimTime(0), SimDuration(100));
        let (s2, e2) = m.reserve(SimTime(0), SimDuration(100));
        // Both start immediately on distinct servers.
        assert_eq!((s1, s2), (SimTime(0), SimTime(0)));
        assert_eq!((e1, e2), (SimTime(100), SimTime(100)));
        // Third task queues behind the earlier-free server.
        let (s3, _) = m.reserve(SimTime(0), SimDuration(10));
        assert_eq!(s3, SimTime(100));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_pool_panics() {
        MultiResource::new("none", 0);
    }
}
