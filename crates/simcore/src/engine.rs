//! The discrete-event engine.
//!
//! [`Engine`] is a cheaply-clonable handle (an `Rc` internally) to a shared
//! event queue. Components capture a clone and schedule boxed closures at
//! future virtual instants. Ties are broken by submission order, so a run is
//! fully deterministic given the same inputs.
//!
//! The queue itself is a hierarchical timing wheel (see [`crate::sched`]):
//! near-future events live in 1 ns slots found through a two-level occupancy
//! bitmap, far-future events in an overflow heap, and event nodes come from
//! a recycling slab. The seed `BinaryHeap` implementation is retained as a
//! differential oracle — build with the `reference-sched` feature (or call
//! [`set_default_scheduler`] / [`Engine::with_scheduler`]) to run on it and
//! compare traces event for event.
//!
//! Two driving styles are supported, matching how the paging workloads use
//! the simulator:
//!
//! * **run-to-condition** ([`Engine::run_until_signal`]): a page fault posts
//!   the I/O chain and then runs the engine until the completion [`Signal`]
//!   fires — virtual time jumps to the completion instant. Deadlocks (queue
//!   drained, signal never set) panic with a diagnostic rather than hanging.
//! * **advance** ([`Engine::advance`]): application compute moves the clock
//!   forward by a span, draining any events that fall inside it — this is
//!   what lets background page-out traffic overlap application compute, the
//!   paper's "asynchrony of page prefetching and flushing".

use crate::sched::{EventQueue, ReferenceHeap, TimingWheel};
use crate::signal::Signal;
use crate::time::{SimDuration, SimTime};
use simtrace::{LifecycleHub, MetricsRegistry, Tracer};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

pub use crate::sched::EventId;

/// Which event-queue implementation an [`Engine`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The production timing-wheel scheduler (slab nodes, overflow heap).
    TimingWheel,
    /// The seed `BinaryHeap` scheduler, kept as a differential oracle.
    ReferenceHeap,
}

#[cfg(feature = "reference-sched")]
const BUILT_IN_DEFAULT: SchedulerKind = SchedulerKind::ReferenceHeap;
#[cfg(not(feature = "reference-sched"))]
const BUILT_IN_DEFAULT: SchedulerKind = SchedulerKind::TimingWheel;

thread_local! {
    static DEFAULT_SCHED: Cell<SchedulerKind> = const { Cell::new(BUILT_IN_DEFAULT) };
}

/// The scheduler new engines on this thread will use.
pub fn default_scheduler() -> SchedulerKind {
    DEFAULT_SCHED.with(|c| c.get())
}

/// Override the scheduler for engines subsequently created on this thread
/// (including those built deep inside scenario constructors). Returns the
/// previous default so tests can restore it. The process-wide default is the
/// timing wheel, or the reference heap when the `reference-sched` feature is
/// enabled.
pub fn set_default_scheduler(kind: SchedulerKind) -> SchedulerKind {
    DEFAULT_SCHED.with(|c| c.replace(kind))
}

struct Inner {
    now: SimTime,
    seq: u64,
    queue: EventQueue,
    kind: SchedulerKind,
    executed: u64,
    /// Peak queue length observed (diagnostics / metrics).
    max_pending: usize,
    tracer: Tracer,
    metrics: MetricsRegistry,
    lifecycle: LifecycleHub,
}

/// Handle to the shared discrete-event queue. Clone freely; all clones refer
/// to the same virtual clock.
#[derive(Clone)]
pub struct Engine {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create a fresh engine with the clock at [`SimTime::ZERO`], on the
    /// thread's default scheduler (see [`set_default_scheduler`]).
    pub fn new() -> Engine {
        Engine::with_scheduler(default_scheduler())
    }

    /// Create a fresh engine on a specific scheduler implementation.
    pub fn with_scheduler(kind: SchedulerKind) -> Engine {
        let queue = match kind {
            SchedulerKind::TimingWheel => EventQueue::Wheel(TimingWheel::new()),
            SchedulerKind::ReferenceHeap => EventQueue::Heap(ReferenceHeap::new()),
        };
        Engine {
            inner: Rc::new(RefCell::new(Inner {
                now: SimTime::ZERO,
                seq: 0,
                queue,
                kind,
                executed: 0,
                max_pending: 0,
                tracer: Tracer::disabled(),
                metrics: MetricsRegistry::new(),
                lifecycle: LifecycleHub::disabled(),
            })),
        }
    }

    /// Which scheduler this engine runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.inner.borrow().kind
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Total number of events executed so far (diagnostics).
    pub fn events_executed(&self) -> u64 {
        self.inner.borrow().executed
    }

    /// Number of events still pending (cancelled events excluded).
    pub fn pending_events(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.inner.borrow_mut().queue.peek_time()
    }

    /// Peak event-queue depth observed over the run (diagnostics).
    pub fn max_pending_events(&self) -> usize {
        self.inner.borrow().max_pending
    }

    /// The tracing handle shared by every component on this engine.
    /// Disabled (no-op) by default; cheap to clone.
    pub fn tracer(&self) -> Tracer {
        self.inner.borrow().tracer.clone()
    }

    /// Whether the installed tracer records anything. Hot emit sites guard
    /// on this before building span arguments, so an untraced run pays one
    /// borrow + flag test per would-be event instead of a `Tracer` clone.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.inner.borrow().tracer.is_enabled()
    }

    /// Install a tracer: components constructed afterwards (and those
    /// that re-read [`Engine::tracer`]) record through it. Install before
    /// building the stack so all layers share one buffer.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.borrow_mut().tracer = tracer;
    }

    /// The request-lifecycle hub shared by every component on this engine.
    /// Disabled (no-op) by default; cheap to clone (an `Option<Rc>`).
    pub fn lifecycle(&self) -> LifecycleHub {
        self.inner.borrow().lifecycle.clone()
    }

    /// Whether the installed lifecycle hub records anything. Hot
    /// attribution sites guard on this before marshalling mark arguments,
    /// mirroring [`Engine::trace_enabled`].
    #[inline]
    pub fn lifecycle_enabled(&self) -> bool {
        self.inner.borrow().lifecycle.is_enabled()
    }

    /// Install a lifecycle hub: requests dispatched afterwards get span
    /// contexts and land in the hub's flight recorders. Install before
    /// building the stack, alongside [`Engine::set_tracer`].
    pub fn set_lifecycle(&self, hub: LifecycleHub) {
        self.inner.borrow_mut().lifecycle = hub;
    }

    /// The metrics registry shared by every component on this engine.
    /// Always present; recording is deterministic and does not perturb
    /// the simulation.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.borrow().metrics.clone()
    }

    /// Schedule `action` to run at absolute instant `at`. Scheduling in the
    /// past panics — it would silently corrupt causality.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce() + 'static) {
        self.schedule_cancellable_at(at, action);
    }

    /// Schedule `action` to run `delay` after the current instant.
    pub fn schedule_in(&self, delay: SimDuration, action: impl FnOnce() + 'static) {
        let at = self.now() + delay;
        self.schedule_at(at, action);
    }

    /// Like [`Engine::schedule_at`], returning a handle that can cancel the
    /// event before it runs (e.g. a request timeout disarmed on completion).
    pub fn schedule_cancellable_at(&self, at: SimTime, action: impl FnOnce() + 'static) -> EventId {
        let mut inner = self.inner.borrow_mut();
        assert!(
            at >= inner.now,
            "scheduled event at {at} before now ({})",
            inner.now
        );
        let seq = inner.seq;
        inner.seq += 1;
        let id = inner.queue.push(at, seq, Box::new(action));
        inner.max_pending = inner.max_pending.max(inner.queue.len());
        id
    }

    /// Like [`Engine::schedule_in`], returning a cancellation handle.
    pub fn schedule_cancellable_in(
        &self,
        delay: SimDuration,
        action: impl FnOnce() + 'static,
    ) -> EventId {
        let at = self.now() + delay;
        self.schedule_cancellable_at(at, action)
    }

    /// Cancel a pending event. Returns whether it was still pending; stale
    /// ids (already ran, already cancelled) are a no-op. The closure is
    /// dropped immediately so captured resources release deterministically.
    pub fn cancel(&self, id: EventId) -> bool {
        self.inner.borrow_mut().queue.cancel(id)
    }

    /// Pop and execute the next event, if any. Returns whether one ran.
    /// Public so schedulers can interleave event processing with task
    /// scheduling decisions.
    pub fn step_one(&self) -> bool {
        self.step()
    }

    /// Run events until ANY of `signals` fires. Panics on deadlock like
    /// [`Engine::run_until_signal`]. Useful when several tasks block on
    /// different I/O completions.
    pub fn run_until_any(&self, signals: &[Signal]) {
        assert!(!signals.is_empty(), "waiting on no signals");
        while !signals.iter().any(Signal::is_set) {
            if !self.step() {
                panic!(
                    "simulation deadlock: waiting on {} signals with no pending events at {}",
                    signals.len(),
                    self.now()
                );
            }
        }
    }

    /// Pop and execute the next event whose time is `<= deadline`.
    /// Returns whether one ran. Holds the borrow only while popping, so the
    /// action is free to schedule follow-up events.
    #[inline]
    fn step_due(&self, deadline: SimTime) -> bool {
        let action = {
            let mut inner = self.inner.borrow_mut();
            match inner.queue.pop_due(deadline) {
                Some((at, action)) => {
                    debug_assert!(at >= inner.now, "event queue went backwards");
                    inner.now = at;
                    inner.executed += 1;
                    action
                }
                None => return false,
            }
        };
        action();
        true
    }

    /// Pop and execute the next event, if any. Returns whether one ran.
    fn step(&self) -> bool {
        self.step_due(SimTime(u64::MAX))
    }

    /// Run until the event queue is empty. The clock rests on the timestamp
    /// of the last executed event.
    pub fn run_until_idle(&self) {
        while self.step() {}
    }

    /// Run events until `signal` fires. Panics if the queue drains first —
    /// that is a simulation deadlock (e.g. flow-control credits never
    /// returned), and hanging silently would hide the bug.
    pub fn run_until_signal(&self, signal: &Signal) {
        while !signal.is_set() {
            if !self.step() {
                panic!(
                    "simulation deadlock: waiting on signal `{}` with no pending events at {}",
                    signal.name(),
                    self.now()
                );
            }
        }
    }

    /// Advance the clock by `span`, executing every event that falls within
    /// it. Afterwards `now == old_now + span`, even if the queue still holds
    /// later events.
    pub fn advance(&self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Run events up to and including instant `deadline`, then set the clock
    /// to `deadline`.
    pub fn run_until(&self, deadline: SimTime) {
        while self.step_due(deadline) {}
        let mut inner = self.inner.borrow_mut();
        if inner.now < deadline {
            inner.now = deadline;
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Engine")
            .field("now", &inner.now)
            .field("pending", &inner.queue.len())
            .field("executed", &inner.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Run the test body on both schedulers so every engine-level invariant
    /// is checked against the oracle too.
    fn on_both(body: impl Fn(Engine)) {
        body(Engine::with_scheduler(SchedulerKind::TimingWheel));
        body(Engine::with_scheduler(SchedulerKind::ReferenceHeap));
    }

    #[test]
    fn events_run_in_time_order() {
        on_both(|eng| {
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            for &t in &[30u64, 10, 20] {
                let log = log.clone();
                eng.schedule_at(SimTime(t), move || log.borrow_mut().push(t));
            }
            eng.run_until_idle();
            assert_eq!(*log.borrow(), vec![10, 20, 30]);
            assert_eq!(eng.now(), SimTime(30));
        });
    }

    #[test]
    fn ties_break_by_submission_order() {
        on_both(|eng| {
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            for i in 0..5u32 {
                let log = log.clone();
                eng.schedule_at(SimTime(42), move || log.borrow_mut().push(i));
            }
            eng.run_until_idle();
            assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn events_can_schedule_events() {
        on_both(|eng| {
            let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
            {
                let eng2 = eng.clone();
                let log = log.clone();
                eng.schedule_at(SimTime(10), move || {
                    log.borrow_mut().push("first");
                    let log2 = log.clone();
                    eng2.schedule_in(SimDuration(5), move || log2.borrow_mut().push("second"));
                });
            }
            eng.run_until_idle();
            assert_eq!(*log.borrow(), vec!["first", "second"]);
            assert_eq!(eng.now(), SimTime(15));
        });
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let eng = Engine::new();
        eng.schedule_at(SimTime(100), || {});
        eng.run_until_idle();
        eng.schedule_at(SimTime(50), || {});
    }

    #[test]
    fn advance_moves_clock_past_empty_queue() {
        on_both(|eng| {
            eng.advance(SimDuration::from_micros(7));
            assert_eq!(eng.now(), SimTime(7_000));
        });
    }

    #[test]
    fn advance_executes_only_events_within_span() {
        on_both(|eng| {
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            for &t in &[5u64, 15] {
                let log = log.clone();
                eng.schedule_at(SimTime(t), move || log.borrow_mut().push(t));
            }
            eng.advance(SimDuration(10));
            assert_eq!(*log.borrow(), vec![5]);
            assert_eq!(eng.now(), SimTime(10));
            eng.run_until_idle();
            assert_eq!(*log.borrow(), vec![5, 15]);
        });
    }

    #[test]
    fn run_until_signal_jumps_to_completion() {
        on_both(|eng| {
            let sig = Signal::new("io-done");
            {
                let sig = sig.clone();
                eng.schedule_at(SimTime(1_000), move || sig.set());
            }
            // A later unrelated event must not run.
            let ran_late: Rc<RefCell<bool>> = Rc::default();
            {
                let ran_late = ran_late.clone();
                eng.schedule_at(SimTime(2_000), move || *ran_late.borrow_mut() = true);
            }
            eng.run_until_signal(&sig);
            assert_eq!(eng.now(), SimTime(1_000));
            assert!(!*ran_late.borrow());
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_until_signal_detects_deadlock() {
        let eng = Engine::new();
        let sig = Signal::new("never");
        eng.run_until_signal(&sig);
    }

    #[test]
    fn executed_counter_counts() {
        on_both(|eng| {
            for i in 0..10u64 {
                eng.schedule_at(SimTime(i), || {});
            }
            eng.run_until_idle();
            assert_eq!(eng.events_executed(), 10);
            assert_eq!(eng.pending_events(), 0);
        });
    }

    #[test]
    fn cancelled_event_never_runs() {
        on_both(|eng| {
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            let id = {
                let log = log.clone();
                eng.schedule_cancellable_at(SimTime(10), move || log.borrow_mut().push(1))
            };
            {
                let log = log.clone();
                eng.schedule_at(SimTime(20), move || log.borrow_mut().push(2));
            }
            assert_eq!(eng.pending_events(), 2);
            assert!(eng.cancel(id));
            assert!(!eng.cancel(id), "cancel must be idempotent-false");
            assert_eq!(eng.pending_events(), 1);
            eng.run_until_idle();
            assert_eq!(*log.borrow(), vec![2]);
            assert_eq!(eng.events_executed(), 1);
        });
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        on_both(|eng| {
            let id = eng.schedule_cancellable_at(SimTime(5), || {});
            eng.run_until_idle();
            assert!(!eng.cancel(id));
        });
    }

    #[test]
    fn cancel_drops_closure_immediately() {
        on_both(|eng| {
            struct DropFlag(Rc<RefCell<bool>>);
            impl Drop for DropFlag {
                fn drop(&mut self) {
                    *self.0.borrow_mut() = true;
                }
            }
            let dropped: Rc<RefCell<bool>> = Rc::default();
            let flag = DropFlag(dropped.clone());
            let id = eng.schedule_cancellable_at(SimTime(1_000), move || {
                let _keep = &flag;
            });
            assert!(!*dropped.borrow());
            eng.cancel(id);
            assert!(*dropped.borrow(), "cancel must release captured state");
        });
    }

    #[test]
    fn thread_default_override_applies_to_new_engines() {
        let prev = set_default_scheduler(SchedulerKind::ReferenceHeap);
        let eng = Engine::new();
        assert_eq!(eng.scheduler_kind(), SchedulerKind::ReferenceHeap);
        set_default_scheduler(prev);
        let eng = Engine::new();
        assert_eq!(eng.scheduler_kind(), prev);
    }
}
