//! Online statistics and histograms for the experiment harness.

use std::fmt;

/// Single-pass mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3} sd={:.3}",
            self.count,
            self.mean(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0),
            self.stddev()
        )
    }
}

/// Fixed-width linear histogram over `[0, bucket_width * buckets)`, with an
/// overflow bucket. Used for the Figure 6 request-size profile.
#[derive(Clone, Debug)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    stats: OnlineStats,
}

impl Histogram {
    /// `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0 && buckets > 0);
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            stats: OnlineStats::new(),
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: u64) {
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.stats.record(x as f64);
    }

    /// Count in bucket `i` (samples in `[i*w, (i+1)*w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of regular buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of all recorded samples.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Iterate `(bucket_lower_bound, count)` over non-empty buckets.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4);
        for x in [0, 9, 10, 35, 39, 40, 1000] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_nonempty_iter() {
        let mut h = Histogram::new(5, 3);
        h.record(0);
        h.record(12);
        let v: Vec<_> = h.iter_nonempty().collect();
        assert_eq!(v, vec![(0, 1), (10, 1)]);
    }
}
