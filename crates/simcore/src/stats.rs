//! Online statistics and histograms for the experiment harness.

use std::fmt;

/// Single-pass mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one, as if every sample of
    /// `other` had been recorded here (parallel Welford combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean += delta * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3} sd={:.3}",
            self.count,
            self.mean(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0),
            self.stddev()
        )
    }
}

/// Fixed-width linear histogram over `[0, bucket_width * buckets)`, with an
/// overflow bucket. Used for the Figure 6 request-size profile.
#[derive(Clone, Debug)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    stats: OnlineStats,
}

impl Histogram {
    /// `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0 && buckets > 0);
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            stats: OnlineStats::new(),
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: u64) {
        let idx = (x / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.stats.record(x as f64);
    }

    /// Count in bucket `i` (samples in `[i*w, (i+1)*w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of regular buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of all recorded samples.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Iterate `(bucket_lower_bound, count)` over non-empty buckets.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) from the bucket counts:
    /// the upper bound of the bucket containing the nearest-rank sample.
    /// Returns `None` when empty; overflow samples report the overflow
    /// boundary (the histogram cannot resolve beyond its range).
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        Some(self.counts.len() as u64 * self.bucket_width)
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    /// Panics if the bucket layouts differ — merged counts would be
    /// meaningless.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4);
        for x in [0, 9, 10, 35, 39, 40, 1000] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_nonempty_iter() {
        let mut h = Histogram::new(5, 3);
        h.record(0);
        h.record(12);
        let v: Vec<_> = h.iter_nonempty().collect();
        assert_eq!(v, vec![(0, 1), (10, 1)]);
    }

    #[test]
    fn merge_matches_single_pass() {
        let samples = [1.0, 5.0, 2.5, 9.0, 4.0, 4.0, 7.5, 0.5];
        let mut whole = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for (i, &x) in samples.iter().enumerate() {
            whole.record(x);
            if i < 3 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert!((left.sum() - whole.sum()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(3.0);
        a.record(5.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(7.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 7.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(10, 10);
        // 100 samples: 1..=100, so bucket i holds values [10i, 10i+10).
        for x in 1..=100u64 {
            h.record(x - 1);
        }
        assert_eq!(h.percentile(0.5), Some(50));
        assert_eq!(h.percentile(0.95), Some(100));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(h.percentile(0.01), Some(10));
    }

    #[test]
    fn histogram_percentile_empty_and_overflow() {
        let mut h = Histogram::new(10, 2);
        assert_eq!(h.percentile(0.5), None);
        h.record(1000); // overflow
        assert_eq!(h.percentile(0.5), Some(20), "overflow reports range end");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(10, 4);
        let mut b = Histogram::new(10, 4);
        a.record(5);
        b.record(5);
        b.record(35);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.bucket(0), 2);
        assert_eq!(a.bucket(3), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 4);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn histogram_merge_rejects_layout_mismatch() {
        let mut a = Histogram::new(10, 4);
        let b = Histogram::new(20, 4);
        a.merge(&b);
    }
}
