//! Linear latency/bandwidth/host-overhead transport models.
//!
//! Each transport is modeled as `T(s) = α + s/B` on the wire plus explicit
//! *host* costs: per-segment stack processing and per-byte checksum/copy
//! work. Separating wire time from host time matters because the paper's
//! central claim is that once the wire is fast (IB), host overhead dominates
//! remote paging: the wire component is charged against link resources
//! (allowing overlap), while the host component is charged against node CPU
//! resources (stealing cycles from the application).

use simcore::SimDuration;

/// Which calibrated transport a channel uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Native InfiniBand verbs (RDMA / send-recv on the 4x fabric).
    IbRdma,
    /// TCP over IP-over-InfiniBand emulation.
    IpoIb,
    /// TCP over Gigabit Ethernet.
    GigE,
}

impl Transport {
    /// Short display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Transport::IbRdma => "IB-RDMA",
            Transport::IpoIb => "IPoIB",
            Transport::GigE => "GigE",
        }
    }
}

/// Parameters of one transport.
#[derive(Clone, Debug)]
pub struct TransportModel {
    /// Display name.
    pub name: &'static str,
    /// One-way zero-byte latency (α): propagation, switching, and the fixed
    /// protocol turnaround.
    pub base_latency_ns: u64,
    /// Payload bandwidth in bytes per nanosecond (B).
    pub bytes_per_ns: f64,
    /// Maximum transmission unit — messages are cut into `ceil(s / mtu)`
    /// segments for host-overhead purposes.
    pub mtu: u64,
    /// Host CPU cost per segment (interrupts, skb handling, TCP/IP code
    /// path). Zero for RDMA: segmentation is offloaded to the HCA.
    pub per_segment_host_ns: u64,
    /// Host CPU cost per byte (checksums and copies on the stack path).
    pub per_byte_host_ns: f64,
}

impl TransportModel {
    /// Number of MTU-sized segments a message of `len` bytes occupies.
    pub fn segments(&self, len: u64) -> u64 {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.mtu)
        }
    }

    /// Pure wire occupancy for `len` bytes (serialisation time).
    pub fn wire_time(&self, len: u64) -> SimDuration {
        SimDuration::from_nanos((len as f64 / self.bytes_per_ns).round() as u64)
    }

    /// One-way propagation (independent of size).
    pub fn propagation(&self) -> SimDuration {
        SimDuration::from_nanos(self.base_latency_ns)
    }

    /// Conservative-synchronization lookahead of a link using this
    /// transport: a hard lower bound on the virtual delay of ANY message,
    /// however small. Every latency component except propagation scales
    /// with message size (and host-side work only adds), so the zero-byte
    /// propagation term is the bound. Partitioned simulations use the
    /// minimum lookahead across their cross-partition links as the barrier
    /// window width (`simcore::parallel`).
    pub fn lookahead(&self) -> SimDuration {
        self.propagation()
    }

    /// Host CPU work to push `len` bytes through the stack on ONE side.
    pub fn host_side_time(&self, len: u64) -> SimDuration {
        let per_seg = self.segments(len) * self.per_segment_host_ns;
        let per_byte = (len as f64 * self.per_byte_host_ns).round() as u64;
        SimDuration::from_nanos(per_seg + per_byte)
    }

    /// Stack-processing time for the FIRST segment on one side — the
    /// pipeline startup cost before the wire can start (or after the last
    /// bits land).
    pub fn segment_startup(&self, len: u64) -> SimDuration {
        let first = len.min(self.mtu);
        SimDuration::from_nanos(
            self.per_segment_host_ns + (first as f64 * self.per_byte_host_ns).round() as u64,
        )
    }

    /// End-to-end one-way latency for a message of `len` bytes, as a
    /// ping-pong microbenchmark would report it. Segment processing on the
    /// hosts PIPELINES with the wire (real TCP overlaps checksum/copy of
    /// segment k with transmission of segment k-1), so the total is
    /// startup + propagation + the bottleneck stage, with the wire the
    /// bottleneck at these calibrations. This is the quantity plotted in
    /// Figure 1.
    pub fn one_way_latency(&self, len: u64) -> SimDuration {
        let bottleneck = self.wire_time(len).max(self.host_side_time(len));
        self.segment_startup(len) + self.propagation() + bottleneck + self.segment_startup(len)
    }

    /// Effective bandwidth implied by `one_way_latency` at size `len`
    /// (bytes/ns) — useful for sanity checks.
    pub fn effective_bandwidth(&self, len: u64) -> f64 {
        len as f64 / self.one_way_latency(len).as_nanos() as f64
    }

    /// A copy of this model describing a degraded link: `added_latency_ns`
    /// extra one-way latency and bandwidth multiplied by `bandwidth_factor`.
    /// Fault plans use this to model cable/switch trouble without touching
    /// the calibrated baseline.
    ///
    /// # Panics
    /// Panics if `bandwidth_factor` is not in `(0.0, 1.0]`.
    pub fn degraded(&self, added_latency_ns: u64, bandwidth_factor: f64) -> TransportModel {
        assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth_factor must be in (0.0, 1.0]"
        );
        TransportModel {
            base_latency_ns: self.base_latency_ns + added_latency_ns,
            bytes_per_ns: self.bytes_per_ns * bandwidth_factor,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Calibration;

    #[test]
    fn figure1_ordering_small_messages() {
        // Figure 1 at small sizes: memcpy < RDMA < IPoIB < GigE.
        let c = Calibration::cluster_2005();
        let len = 64;
        let memcpy = c.memcpy_time(len);
        let rdma = c.ib.one_way_latency(len);
        let ipoib = c.ipoib.one_way_latency(len);
        let gige = c.gige.one_way_latency(len);
        assert!(memcpy < rdma, "{memcpy} !< {rdma}");
        assert!(rdma < ipoib, "{rdma} !< {ipoib}");
        assert!(ipoib < gige, "{ipoib} !< {gige}");
    }

    #[test]
    fn figure1_ordering_large_messages() {
        // ...and at 128K the same ordering holds, with RDMA staying within a
        // small factor of memcpy ("quite comparable") while the TCP
        // transports are many times slower.
        let c = Calibration::cluster_2005();
        let len = 128 * 1024;
        let memcpy = c.memcpy_time(len).as_nanos() as f64;
        let rdma = c.ib.one_way_latency(len).as_nanos() as f64;
        let ipoib = c.ipoib.one_way_latency(len).as_nanos() as f64;
        let gige = c.gige.one_way_latency(len).as_nanos() as f64;
        assert!(rdma / memcpy < 2.5, "RDMA should be comparable to memcpy");
        assert!(ipoib / rdma > 3.0, "IPoIB should be several times slower");
        assert!(gige / ipoib > 1.5, "GigE should be slowest");
    }

    #[test]
    fn rdma_has_no_host_overhead() {
        let c = Calibration::cluster_2005();
        assert!(c.ib.host_side_time(128 * 1024).is_zero());
        assert!(!c.ipoib.host_side_time(128 * 1024).is_zero());
    }

    #[test]
    fn segment_count() {
        let c = Calibration::cluster_2005();
        assert_eq!(c.gige.segments(0), 1);
        assert_eq!(c.gige.segments(1500), 1);
        assert_eq!(c.gige.segments(1501), 2);
        assert_eq!(c.gige.segments(128 * 1024), 88);
    }

    #[test]
    fn small_rdma_latency_is_microseconds() {
        // The paper quotes a few microseconds for small RDMA writes.
        let c = Calibration::cluster_2005();
        let lat = c.ib.one_way_latency(8).as_nanos();
        assert!((4_000..12_000).contains(&lat), "got {lat}ns");
    }

    #[test]
    fn effective_bandwidth_below_wire_rate() {
        let c = Calibration::cluster_2005();
        let bw = c.ib.effective_bandwidth(1 << 20);
        assert!(bw < c.ib.bytes_per_ns);
        assert!(bw > c.ib.bytes_per_ns * 0.9, "1MB should amortise latency");
    }

    #[test]
    fn degraded_link_is_slower() {
        let c = Calibration::cluster_2005();
        let bad = c.ib.degraded(10_000, 0.25);
        assert_eq!(bad.base_latency_ns, c.ib.base_latency_ns + 10_000);
        assert!(bad.wire_time(1 << 20) > c.ib.wire_time(1 << 20));
        // The identity degradation changes nothing.
        let same = c.ib.degraded(0, 1.0);
        assert_eq!(same.base_latency_ns, c.ib.base_latency_ns);
        assert_eq!(same.wire_time(1 << 20), c.ib.wire_time(1 << 20));
    }

    #[test]
    #[should_panic(expected = "bandwidth_factor")]
    fn degraded_validates_factor() {
        let _ = Calibration::cluster_2005().ib.degraded(0, 2.0);
    }

    #[test]
    fn lookahead_lower_bounds_every_latency() {
        // The lookahead must never exceed the one-way latency of any
        // message on the link — that is the conservative-sync contract.
        let c = Calibration::cluster_2005();
        for t in [&c.ib, &c.ipoib, &c.gige] {
            assert!(!t.lookahead().is_zero(), "{}: zero lookahead", t.name);
            for len in [0u64, 1, 64, 4096, 128 * 1024] {
                assert!(
                    t.lookahead() <= t.one_way_latency(len),
                    "{}: lookahead {} exceeds latency {} at {len}B",
                    t.name,
                    t.lookahead(),
                    t.one_way_latency(len)
                );
            }
        }
        // Degrading a link only raises its latency floor, so the baseline
        // lookahead stays valid (and the degraded link's own is larger).
        let bad = c.ib.degraded(10_000, 0.5);
        assert!(bad.lookahead() >= c.ib.lookahead());
    }

    #[test]
    fn calibration_min_lookahead_is_ib_propagation() {
        let c = Calibration::cluster_2005();
        assert_eq!(c.min_lookahead(), c.ib.propagation());
        assert!(c.min_lookahead() <= c.ipoib.lookahead());
        assert!(c.min_lookahead() <= c.gige.lookahead());
    }
}
