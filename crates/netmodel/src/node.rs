//! A compute node of the simulated cluster.
//!
//! Each node owns the timing resources that its components contend for: a
//! dual-CPU pool (the paper's testbed nodes are dual Xeons) and one
//! full-duplex network port (tx and rx link resources). The InfiniBand HCA,
//! the TCP stack, the VM subsystem and the applications running on a node
//! all share these resources, which is how host-side contention — the
//! paper's "host overhead" — enters every measurement.

use simcore::{MultiResource, Resource};
use std::fmt;
use std::rc::Rc;

struct NodeInner {
    name: String,
    id: usize,
    cpu: MultiResource,
    tx: Resource,
    rx: Resource,
}

/// Shared handle to one cluster node. Clones refer to the same node.
#[derive(Clone)]
pub struct Node {
    inner: Rc<NodeInner>,
}

impl Node {
    /// Create a node with `cpus` cores (the paper's nodes have 2).
    pub fn new(name: impl Into<String>, id: usize, cpus: usize) -> Node {
        Node {
            inner: Rc::new(NodeInner {
                name: name.into(),
                id,
                cpu: MultiResource::new("node-cpu", cpus),
                tx: Resource::new("port-tx"),
                rx: Resource::new("port-rx"),
            }),
        }
    }

    /// Node name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Dense node id assigned by the scenario builder.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// The node CPU pool.
    pub fn cpu(&self) -> &MultiResource {
        &self.inner.cpu
    }

    /// Egress link resource of the node's network port.
    pub fn tx(&self) -> &Resource {
        &self.inner.tx
    }

    /// Ingress link resource of the node's network port.
    pub fn rx(&self) -> &Resource {
        &self.inner.rx
    }

    /// Identity comparison (same underlying node).
    pub fn same_node(&self, other: &Node) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.inner.name)
            .field("id", &self.inner.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_identity() {
        let a = Node::new("client", 0, 2);
        let b = a.clone();
        let c = Node::new("client", 0, 2);
        assert!(a.same_node(&b));
        assert!(!a.same_node(&c));
        assert_eq!(a.cpu().servers(), 2);
    }
}
