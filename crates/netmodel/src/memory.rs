//! Memory-path cost model shared by both nodes.
//!
//! [`MemoryModel`] wraps a [`Calibration`] and a node CPU
//! [`simcore::MultiResource`], charging memcpy/registration work against the
//! CPU so that staging copies contend with application compute — the "host
//! overhead" the paper identifies as the dominant cost once the network is
//! fast.

use crate::Calibration;
use simcore::{Engine, MultiResource, SimDuration, SimTime};
use std::rc::Rc;

/// Per-node memory cost model bound to that node's CPU resource.
#[derive(Clone)]
pub struct MemoryModel {
    cal: Rc<Calibration>,
    cpu: MultiResource,
    engine: Engine,
}

impl MemoryModel {
    /// Bind a calibration to a node CPU pool.
    pub fn new(engine: Engine, cal: Rc<Calibration>, cpu: MultiResource) -> MemoryModel {
        MemoryModel { cal, cpu, engine }
    }

    /// The node CPU pool (shared with other components on the node).
    pub fn cpu(&self) -> &MultiResource {
        &self.cpu
    }

    /// The calibration in effect.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// Reserve CPU time for a memcpy of `len` bytes starting no earlier than
    /// `earliest`; returns the completion instant.
    pub fn memcpy_busy(&self, earliest: SimTime, len: u64) -> SimTime {
        let dur = self.cal.memcpy_time(len);
        let (_, end) = self.cpu.reserve(earliest, dur);
        end
    }

    /// Schedule a memcpy starting now; invokes `done` at its completion.
    pub fn memcpy_async(&self, len: u64, done: impl FnOnce() + 'static) {
        let end = self.memcpy_busy(self.engine.now(), len);
        self.engine.schedule_at(end, done);
    }

    /// Reserve CPU time for registering `len` bytes; returns completion.
    pub fn register_busy(&self, earliest: SimTime, len: u64) -> SimTime {
        let dur = self.cal.registration_time(len);
        let (_, end) = self.cpu.reserve(earliest, dur);
        end
    }

    /// memcpy duration without reserving CPU (pure model query).
    pub fn memcpy_time(&self, len: u64) -> SimDuration {
        self.cal.memcpy_time(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn setup() -> (Engine, MemoryModel) {
        let eng = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cpu = MultiResource::new("cpu", 2);
        let mm = MemoryModel::new(eng.clone(), cal, cpu);
        (eng, mm)
    }

    #[test]
    fn memcpy_async_fires_after_cost() {
        let (eng, mm) = setup();
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        {
            let done_at = done_at.clone();
            let eng2 = eng.clone();
            mm.memcpy_async(4096, move || done_at.set(eng2.now()));
        }
        eng.run_until_idle();
        let expect = mm.memcpy_time(4096);
        assert_eq!(done_at.get(), SimTime::ZERO + expect);
    }

    #[test]
    fn copies_contend_beyond_cpu_count() {
        let (eng, mm) = setup();
        // Three copies on a 2-CPU node: the third queues.
        let t1 = mm.memcpy_busy(eng.now(), 65536);
        let t2 = mm.memcpy_busy(eng.now(), 65536);
        let t3 = mm.memcpy_busy(eng.now(), 65536);
        assert_eq!(t1, t2);
        assert!(t3 > t1);
    }
}
