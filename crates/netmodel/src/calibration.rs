//! The single source of truth for every timing constant in the simulation.
//!
//! All constants are grouped into one [`Calibration`] struct so that an
//! experiment can be re-run under a different hardware assumption by editing
//! exactly one value, and so DESIGN.md can point at one place for the
//! calibration story.

use crate::transport::TransportModel;
use simcore::SimDuration;

/// HCA (host channel adapter) behaviour beyond raw wire speed.
#[derive(Clone, Debug)]
pub struct HcaParams {
    /// CPU cost of building + posting one work request descriptor
    /// (`VAPI_post_sr` analogue). For a chained post this is paid once,
    /// by the head of the chain — the doorbell cost.
    pub post_ns: u64,
    /// CPU cost of each work request after the first in a chained post:
    /// descriptor build only, no doorbell MMIO. Amortizing the doorbell
    /// across a chain is the point of posting linked WQE lists.
    pub chained_post_ns: u64,
    /// Latency from a completion entering the CQ to the solicited-event
    /// handler running (interrupt + handler dispatch). The paper's client
    /// receiver thread and the server's idle wakeup both pay this.
    pub completion_event_ns: u64,
    /// Number of QP contexts the HCA can hold in its on-chip cache. The
    /// MT23108 degrades once the working set of active QPs exceeds this —
    /// the cause of Figure 10's 16-server droop.
    pub qp_cache_size: usize,
    /// Extra per-operation cost when the QP context has to be reloaded from
    /// host memory.
    pub qp_ctx_reload_ns: u64,
    /// HCA processing cost per work request, independent of size (doorbell,
    /// WQE fetch, scheduling).
    pub per_wqe_ns: u64,
    /// Payload bandwidth of RDMA READ responses in bytes/ns. The MT23108
    /// (Tavor) serves RDMA READ at roughly half its write bandwidth — a
    /// well-known limitation of the part, and it sits on HPBD's swap-out
    /// path because the server pulls page data with READs.
    pub rdma_read_bytes_per_ns: f64,
    /// Extra per-WQE scheduling/arbitration cost for every connected QP
    /// beyond the context-cache capacity. The paper attributes the
    /// 16-server degradation of Figure 10 to "the HCA design for multiple
    /// queue pair processing"; this models that cost growing once the QP
    /// population exceeds what the HCA handles natively.
    pub qp_sched_ns_per_excess: u64,
}

/// Seek/rotation/transfer model for the local ATA disk baseline
/// (ST340014A: 7200 rpm Barracuda-class, ~50 MB/s media rate).
#[derive(Clone, Debug)]
pub struct DiskParams {
    /// Average seek time for a non-adjacent access.
    pub avg_seek_ns: u64,
    /// Average rotational delay (half a revolution at 7200 rpm).
    pub avg_rotational_ns: u64,
    /// Media transfer rate in bytes per nanosecond.
    pub bytes_per_ns: f64,
    /// Fixed per-command controller overhead.
    pub command_overhead_ns: u64,
}

impl DiskParams {
    /// Pure transfer time for `len` bytes.
    pub fn transfer_time(&self, len: u64) -> SimDuration {
        SimDuration::from_nanos((len as f64 / self.bytes_per_ns).round() as u64)
    }

    /// Positioning time: zero for a sequential successor access, otherwise
    /// seek + rotational delay.
    pub fn positioning_time(&self, sequential: bool) -> SimDuration {
        if sequential {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.avg_seek_ns + self.avg_rotational_ns)
        }
    }

    /// Full service time for one request.
    pub fn service_time(&self, len: u64, sequential: bool) -> SimDuration {
        SimDuration::from_nanos(self.command_overhead_ns)
            + self.positioning_time(sequential)
            + self.transfer_time(len)
    }
}

/// Per-operation compute costs used by the workloads to advance the virtual
/// clock. Chosen so the "enough local memory" runs land near the paper's
/// absolute numbers at scale = 1 (testswap ≈ 5.8 s, quicksort ≈ 94 s on
/// 256 Mi elements, Barnes ≈ its reported runtime band).
#[derive(Clone, Debug)]
pub struct ComputeParams {
    /// Cost of one sequential array write in testswap (includes the
    /// amortised cost the 2.66 GHz Xeon paid per int store + loop).
    pub testswap_ns_per_write: u64,
    /// Cost of one quicksort "operation" (comparison + swap amortised).
    pub qsort_ns_per_op: u64,
    /// Cost of one body-body (or body-cell) interaction in Barnes-Hut.
    pub barnes_ns_per_interaction: u64,
    /// Kernel path cost of taking a page fault (trap, VM lookup) before any
    /// I/O happens.
    pub fault_ns: u64,
    /// Kernel block-layer cost per submitted physical I/O request.
    pub block_submit_ns: u64,
}

/// Every constant in the simulation, with the 2005 testbed as the preset.
#[derive(Clone, Debug)]
pub struct Calibration {
    // -- memory subsystem ---------------------------------------------------
    /// Fixed memcpy startup cost.
    pub memcpy_base_ns: u64,
    /// memcpy throughput, bytes/ns (2005 Xeon: ≈1.6 GB/s).
    pub memcpy_bytes_per_ns: f64,
    /// Fixed cost of registering a memory region with the HCA (syscall,
    /// pinning setup, HCA table update).
    pub reg_base_ns: u64,
    /// Additional registration cost per 4 KiB page pinned.
    pub reg_per_page_ns: u64,
    /// Cost of deregistering a region.
    pub dereg_base_ns: u64,
    /// Page size used throughout (IA-32: 4 KiB).
    pub page_size: u64,

    // -- transports ---------------------------------------------------------
    /// Native InfiniBand 4x through the MT23108 (PCI-X-limited).
    pub ib: TransportModel,
    /// IP-over-IB emulation on the same fabric.
    pub ipoib: TransportModel,
    /// Gigabit Ethernet.
    pub gige: TransportModel,

    // -- HCA ------------------------------------------------------------------
    /// Host channel adapter behaviour (WQE costs, QP-context cache).
    pub hca: HcaParams,

    // -- disk -----------------------------------------------------------------
    /// The local ATA disk baseline's mechanics.
    pub disk: DiskParams,

    // -- compute ---------------------------------------------------------------
    /// Per-operation application/kernel compute costs.
    pub compute: ComputeParams,
}

impl Calibration {
    /// The paper's testbed: dual Xeon 2.66 GHz, PCI-X 133, MT23108 4x IB,
    /// GigE, ST340014A ATA disk, Linux 2.4 (RedHat 9).
    pub fn cluster_2005() -> Calibration {
        Calibration {
            memcpy_base_ns: 200,
            memcpy_bytes_per_ns: 1.6, // ≈1.6 GB/s
            reg_base_ns: 85_000,      // ≈85 us fixed pin+table cost
            reg_per_page_ns: 350,
            dereg_base_ns: 30_000,
            page_size: 4096,
            ib: TransportModel {
                name: "IB-RDMA",
                base_latency_ns: 6_000, // ≈6 us small-message RDMA write
                bytes_per_ns: 0.84,     // ≈840 MB/s PCI-X-limited payload
                mtu: 2048,
                per_segment_host_ns: 0, // offloaded: no per-packet host work
                per_byte_host_ns: 0.0,
            },
            ipoib: TransportModel {
                name: "IPoIB",
                base_latency_ns: 28_000, // TCP/IP stack both ends
                bytes_per_ns: 0.24,      // ≈240 MB/s effective
                mtu: 2044,
                per_segment_host_ns: 1_500, // per-packet stack processing
                per_byte_host_ns: 0.35,     // checksum + copies
            },
            gige: TransportModel {
                name: "GigE",
                base_latency_ns: 48_000,
                bytes_per_ns: 0.110, // ≈110 MB/s
                mtu: 1500,
                per_segment_host_ns: 1_800,
                per_byte_host_ns: 0.35,
            },
            hca: HcaParams {
                post_ns: 300,
                chained_post_ns: 120,
                completion_event_ns: 4_000,
                qp_cache_size: 8,
                qp_ctx_reload_ns: 2_500,
                per_wqe_ns: 500,
                rdma_read_bytes_per_ns: 0.5, // Tavor READ ~500 MB/s
                qp_sched_ns_per_excess: 1_500,
            },
            disk: DiskParams {
                avg_seek_ns: 8_500_000,
                avg_rotational_ns: 4_160_000,
                bytes_per_ns: 0.050, // ≈50 MB/s media rate
                command_overhead_ns: 200_000,
            },
            compute: ComputeParams {
                testswap_ns_per_write: 22,
                qsort_ns_per_op: 4,
                barnes_ns_per_interaction: 55,
                fault_ns: 2_500,
                block_submit_ns: 1_500,
            },
        }
    }

    /// memcpy cost for `len` bytes (Figure 3's lower curve and the cost the
    /// HPBD client/server pay to stage pages through registered buffers).
    pub fn memcpy_time(&self, len: u64) -> SimDuration {
        SimDuration::from_nanos(
            self.memcpy_base_ns + (len as f64 / self.memcpy_bytes_per_ns).round() as u64,
        )
    }

    /// Memory-registration cost for a region of `len` bytes (Figure 3's
    /// upper curve): fixed cost plus a per-pinned-page charge.
    pub fn registration_time(&self, len: u64) -> SimDuration {
        let pages = len.div_ceil(self.page_size).max(1);
        SimDuration::from_nanos(self.reg_base_ns + pages * self.reg_per_page_ns)
    }

    /// Deregistration cost.
    pub fn deregistration_time(&self, len: u64) -> SimDuration {
        let pages = len.div_ceil(self.page_size).max(1);
        SimDuration::from_nanos(self.dereg_base_ns + pages * (self.reg_per_page_ns / 4))
    }

    /// Minimum lookahead over all calibrated transports — the safe barrier
    /// window width for a partitioned simulation whose partitions may talk
    /// over any of them (see [`TransportModel::lookahead`]).
    pub fn min_lookahead(&self) -> SimDuration {
        self.ib
            .lookahead()
            .min(self.ipoib.lookahead())
            .min(self.gige.lookahead())
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::cluster_2005()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::cluster_2005()
    }

    #[test]
    fn memcpy_scales_linearly() {
        let c = cal();
        let t4k = c.memcpy_time(4096).as_nanos();
        let t128k = c.memcpy_time(128 * 1024).as_nanos();
        // 32x the bytes should be ~32x the variable cost.
        let var4k = t4k - c.memcpy_base_ns;
        let var128k = t128k - c.memcpy_base_ns;
        let ratio = var128k as f64 / var4k as f64;
        assert!((ratio - 32.0).abs() < 0.5, "ratio was {ratio}");
    }

    #[test]
    fn registration_dwarfs_memcpy_in_swap_range() {
        // Figure 3: for 4K..127K requests, registering on the fly is far
        // costlier than copying through a pre-registered pool.
        let c = cal();
        for len in [4096u64, 16 * 1024, 64 * 1024, 127 * 1024] {
            let reg = c.registration_time(len).as_nanos();
            let cpy = c.memcpy_time(len).as_nanos();
            assert!(
                reg > cpy,
                "registration ({reg}ns) should exceed memcpy ({cpy}ns) at {len}B"
            );
        }
        // ...and the gap is large at page size.
        assert!(c.registration_time(4096).as_nanos() > 10 * c.memcpy_time(4096).as_nanos());
    }

    #[test]
    fn registration_crossover_is_beyond_swap_range() {
        // Eventually copying costs more than registering (that is why MPI
        // implementations register large buffers); the crossover must sit
        // above the 128K max swap request.
        let c = cal();
        let mut crossover = None;
        for i in 1..=4096u64 {
            let len = i * 4096;
            if c.memcpy_time(len) > c.registration_time(len) {
                crossover = Some(len);
                break;
            }
        }
        let x = crossover.expect("memcpy should eventually exceed registration");
        assert!(x > 127 * 1024, "crossover at {x} inside swap range");
    }

    #[test]
    fn disk_sequential_vs_random() {
        let d = cal().disk;
        let seq = d.service_time(128 * 1024, true);
        let rnd = d.service_time(128 * 1024, false);
        assert!(rnd.as_nanos() > 4 * seq.as_nanos());
        // Random 4K read ≈ 12.7 ms positioning + transfer.
        let r4k = d.service_time(4096, false);
        assert!(r4k.as_nanos() > 12_000_000 && r4k.as_nanos() < 14_000_000);
    }

    #[test]
    fn registration_rounds_up_pages() {
        let c = cal();
        // 1 byte still pins one page.
        assert_eq!(c.registration_time(1), c.registration_time(4096));
        assert!(c.registration_time(4097) > c.registration_time(4096));
    }
}
