#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # netmodel — calibrated cost models for the HPBD testbed
//!
//! The paper evaluates HPBD on a 2005 cluster: dual Xeon 2.66 GHz nodes,
//! PCI-X 133 MHz, Mellanox MT23108 HCAs on a 144-port IB switch, GigE NICs,
//! and ST340014A ATA disks. We have none of that hardware, so every timing
//! the simulation charges comes from the parameterised models in this crate,
//! calibrated to the latency curves the paper itself reports (Figures 1
//! and 3) and to public specs of the era's parts.
//!
//! * [`Calibration`] — one documented struct holding every constant; the
//!   [`Calibration::cluster_2005`] preset reproduces the paper's testbed.
//! * [`TransportModel`] — linear latency/bandwidth/host-overhead model used
//!   for native IB, IPoIB and GigE ([`Transport`] selects the preset).
//! * [`MemoryModel`] — memcpy and memory-registration costs (Figure 3).
//! * [`DiskParams`] — seek/rotation/transfer model for the local-disk
//!   baseline.
//!
//! The models are *shape-faithful*: RDMA latency tracks memcpy closely while
//! IPoIB and GigE sit far above it, and registration dwarfs copying across
//! the 4 KiB–127 KiB range that swap requests occupy — the two observations
//! that drive the paper's design choices (copy through a pre-registered pool,
//! native verbs instead of TCP).

pub mod calibration;
pub mod memory;
pub mod node;
pub mod transport;

pub use calibration::{Calibration, ComputeParams, DiskParams, HcaParams};
pub use memory::MemoryModel;
pub use node::Node;
pub use transport::{Transport, TransportModel};
