//! The VM core: fault handling, reclaim, kswapd.
//!
//! State machine per page (keyed by address-space id + virtual page
//! number):
//!
//! ```text
//!   (absent) --first touch--> Resident{dirty}
//!   Resident --clock eviction, clean+slot--> Swapped      (no I/O)
//!   Resident --clock eviction, dirty------> Writing --io--> Swapped
//!   Swapped  --fault-----------------------> Reading --io--> Resident
//!   Writing  --touch (re-reference)--------> stays, re-dirties on write
//! ```
//!
//! Replacement is second-chance (CLOCK) over resident pages. `kswapd` runs
//! as engine events: woken when free frames drop below the low watermark,
//! it issues batched page-outs until the high watermark is restored —
//! asynchronously, so page-out I/O overlaps application compute exactly as
//! the paper's measurements rely on. Swap-in performs cluster readahead
//! over the next-fit-contiguous slots. Pages that came back clean from
//! swap keep their slot and evict for free until re-dirtied.

use crate::backend::{LoadKind, SwapBackend};
use crate::config::VmConfig;
use crate::frames::{FrameId, FramePool};
use crate::swap::{PageKey, Slot, SwapManager};
use blockdev::IoBuffer;
use netmodel::{Calibration, Node};
use simcore::{Engine, Signal, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Free frames the swap-in readahead may not consume.
const READAHEAD_RESERVE: usize = 2;
/// Retry bound for the blocking access path, to turn livelock into a
/// diagnosable panic.
const MAX_FAULT_RETRIES: usize = 10_000;

#[derive(Clone)]
enum PageState {
    Resident {
        frame: FrameId,
        slot: Option<Slot>,
        dirty: bool,
    },
    Swapped {
        slot: Slot,
    },
    Reading {
        frame: FrameId,
        slot: Slot,
        signal: Signal,
        /// When the read was issued (trace span start).
        started: SimTime,
        /// Demand fault (true) vs readahead (false).
        major: bool,
    },
    Writing {
        frame: FrameId,
        slot: Slot,
        dirty_again: bool,
    },
}

#[derive(Clone)]
struct PageEntry {
    state: PageState,
    referenced: bool,
}

/// Dense per-asid page table. Asids and vpns are both small bump-allocated
/// integers (`Vm::new_asid`, `AddressSpace::alloc_pages`), so a slab per
/// address space resolves the fault-path lookup with two array indexings.
/// Point lookups dominate — under swap pressure every element access of a
/// `PagedVec` whose lookaside cache was invalidated lands here, and the
/// previous `BTreeMap<PageKey, _>` walk was the largest single host cost
/// of the memory-pressure figures.
struct PageTable {
    /// Slab per asid; index 0 stays empty (asids start at 1).
    spaces: Vec<Vec<Option<PageEntry>>>,
}

impl PageTable {
    fn new() -> PageTable {
        PageTable { spaces: Vec::new() }
    }

    #[inline]
    fn get(&self, key: &PageKey) -> Option<&PageEntry> {
        self.spaces
            .get(key.0 as usize)?
            .get(key.1 as usize)?
            .as_ref()
    }

    #[inline]
    fn get_mut(&mut self, key: &PageKey) -> Option<&mut PageEntry> {
        self.spaces
            .get_mut(key.0 as usize)?
            .get_mut(key.1 as usize)?
            .as_mut()
    }

    fn insert(&mut self, key: PageKey, entry: PageEntry) {
        let (asid, vpn) = (key.0 as usize, key.1 as usize);
        if self.spaces.len() <= asid {
            self.spaces.resize_with(asid + 1, Vec::new);
        }
        let space = &mut self.spaces[asid];
        if space.len() <= vpn {
            space.resize_with(vpn + 1, || None);
        }
        space[vpn] = Some(entry);
    }

    fn remove(&mut self, key: &PageKey) -> Option<PageEntry> {
        self.spaces
            .get_mut(key.0 as usize)?
            .get_mut(key.1 as usize)?
            .take()
    }

    /// Live entries in `(asid, vpn)` order — same order the `BTreeMap`
    /// used to iterate in.
    fn iter(&self) -> impl Iterator<Item = (PageKey, &PageEntry)> {
        self.spaces.iter().enumerate().flat_map(|(asid, space)| {
            space
                .iter()
                .enumerate()
                .filter_map(move |(vpn, e)| e.as_ref().map(|en| ((asid as u32, vpn as u64), en)))
        })
    }
}

/// Paging activity counters.
#[derive(Clone, Debug, Default)]
pub struct VmStats {
    /// Faults that required swap-in I/O.
    pub major_faults: u64,
    /// Pages read from swap (faults + readahead).
    pub swap_ins: u64,
    /// Of which readahead.
    pub readaheads: u64,
    /// Pages written to swap.
    pub swap_outs: u64,
    /// Clean pages evicted without I/O (swap-cache hit on eviction).
    pub clean_evictions: u64,
    /// First-touch zero-filled pages.
    pub zero_fills: u64,
    /// Times an allocation had to wait for a free frame.
    pub frame_waits: u64,
    /// Synchronous-reclaim episodes the allocating task waited on
    /// (Linux 2.4 `try_to_free_pages` throttling).
    pub throttles: u64,
}

/// An in-flight synchronous reclaim episode (Linux 2.4
/// `try_to_free_pages` semantics): the allocating task waits until the
/// episode's page-outs complete.
struct Throttle {
    signal: Signal,
    remaining: usize,
    /// Episode start (trace span start).
    started: SimTime,
    /// Page-outs this episode issued.
    issued: usize,
}

struct VmInner {
    config: VmConfig,
    frames: FramePool,
    table: PageTable,
    clock: VecDeque<PageKey>,
    swap: SwapManager,
    /// Signals to fire whenever forward progress happens (frame freed or
    /// I/O finished) so blocked allocators retry.
    waiters: Vec<Signal>,
    /// Synchronous-reclaim episode in flight, if any.
    throttle: Option<Throttle>,
    kswapd_active: bool,
    next_asid: u32,
    /// Residency-change counter, shared out via [`Vm::epoch_handle`] so
    /// page-cache consumers can validate without borrowing the VM.
    epoch: Rc<Cell<u64>>,
    stats: VmStats,
}

/// Lazily-resolved metric handles for the VM's hot emit sites (one registry
/// lookup each, on first use).
struct VmCounters {
    readahead_hits: simtrace::LazyCounter,
    throttles: simtrace::LazyCounter,
    kswapd_batches: simtrace::LazyCounter,
}

/// The simulated VM subsystem of one node. Clone shares the instance.
#[derive(Clone)]
pub struct Vm {
    engine: Engine,
    cal: Rc<Calibration>,
    node: Node,
    inner: Rc<RefCell<VmInner>>,
    ctrs: Rc<VmCounters>,
}

impl Vm {
    /// Create a VM with `config` on `node`.
    pub fn new(engine: Engine, cal: Rc<Calibration>, node: Node, config: VmConfig) -> Vm {
        assert!(
            config.total_frames > config.high_watermark + READAHEAD_RESERVE,
            "memory too small for watermarks"
        );
        let frames = FramePool::new(config.total_frames, config.page_size as usize);
        let swap = SwapManager::new(config.page_size);
        Vm {
            ctrs: Rc::new(VmCounters {
                readahead_hits: engine.metrics().lazy_counter("vmsim.readahead_hits"),
                throttles: engine.metrics().lazy_counter("vmsim.throttles"),
                kswapd_batches: engine.metrics().lazy_counter("vmsim.kswapd_batches"),
            }),
            engine,
            cal,
            node,
            inner: Rc::new(RefCell::new(VmInner {
                config,
                frames,
                table: PageTable::new(),
                clock: VecDeque::new(),
                swap,
                waiters: Vec::new(),
                throttle: None,
                kswapd_active: false,
                next_asid: 1,
                epoch: Rc::new(Cell::new(0)),
                stats: VmStats::default(),
            })),
        }
    }

    /// The engine driving this VM.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The node the VM lives on.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// The calibration in effect.
    pub fn calibration(&self) -> &Rc<Calibration> {
        &self.cal
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.inner.borrow().config.page_size
    }

    /// Register a swap backend with `priority` (higher fills first).
    pub fn add_swap_backend(&self, backend: Rc<dyn SwapBackend>, priority: i32) -> u32 {
        self.inner.borrow_mut().swap.add_device(backend, priority)
    }

    /// Allocate a fresh address-space id.
    pub fn new_asid(&self) -> u32 {
        let mut inner = self.inner.borrow_mut();
        let asid = inner.next_asid;
        inner.next_asid += 1;
        asid
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> usize {
        self.inner.borrow().frames.free_count()
    }

    /// Free slots across all swap devices.
    pub fn free_swap_slots(&self) -> u64 {
        self.inner.borrow().swap.free_slots()
    }

    /// Counter that bumps on every residency change; callers caching frame
    /// buffers must re-validate when it moves.
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch.get()
    }

    /// Shared handle to the epoch counter. Reading through the handle skips
    /// the `RefCell` borrow of the VM — this sits on the per-element access
    /// fast path of [`crate::PagedVec`], which validates its one-page cache
    /// against the epoch on *every* load and store.
    pub fn epoch_handle(&self) -> Rc<Cell<u64>> {
        self.inner.borrow().epoch.clone()
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> VmStats {
        self.inner.borrow().stats.clone()
    }

    /// Validate cross-structure invariants (used by property tests):
    /// every frame is either free or owned by exactly one page entry, and
    /// every allocated swap slot is referenced by exactly one page entry.
    ///
    /// # Panics
    /// Panics with a diagnostic if an invariant is violated.
    pub fn check_invariants(&self) {
        let inner = self.inner.borrow();
        let mut frames_used = 0usize;
        let mut seen_frames = std::collections::BTreeSet::new();
        let mut seen_slots = std::collections::BTreeSet::new();
        for (key, entry) in inner.table.iter() {
            let (frame, slot) = match entry.state {
                PageState::Resident { frame, slot, .. } => (Some(frame), slot),
                PageState::Swapped { slot } => (None, Some(slot)),
                PageState::Reading { frame, slot, .. } => (Some(frame), Some(slot)),
                PageState::Writing { frame, slot, .. } => (Some(frame), Some(slot)),
            };
            if let Some(f) = frame {
                assert!(
                    seen_frames.insert(f),
                    "frame {f} owned by two pages (second: {key:?})"
                );
                frames_used += 1;
            }
            if let Some(s) = slot {
                assert!(
                    seen_slots.insert(s),
                    "slot {s:?} referenced by two pages (second: {key:?})"
                );
                assert_eq!(
                    inner.swap.owner_of(s),
                    Some(key),
                    "slot {s:?} rmap does not point back at {key:?}"
                );
            }
        }
        assert_eq!(
            frames_used + inner.frames.free_count(),
            inner.frames.total(),
            "frame accounting: used + free != total"
        );
    }

    /// Touch page `(asid, vpn)`. On success returns the frame buffer (valid
    /// until the next engine run). If the access must wait — swap-in in
    /// flight, or no free frame — returns the [`Signal`] that fires when
    /// retrying makes sense.
    pub fn try_page(&self, asid: u32, vpn: u64, write: bool) -> Result<IoBuffer, Signal> {
        let mut inner = self.inner.borrow_mut();
        let key = (asid, vpn);
        match inner.table.get_mut(&key) {
            Some(entry) => {
                entry.referenced = true;
                match &mut entry.state {
                    PageState::Resident { frame, dirty, .. } => {
                        if write {
                            *dirty = true;
                        }
                        let frame = *frame;
                        Ok(inner.frames.buffer(frame))
                    }
                    PageState::Writing {
                        frame, dirty_again, ..
                    } => {
                        // Page under writeback is still mapped; a write
                        // re-dirties it so it will not be freed.
                        if write {
                            *dirty_again = true;
                        }
                        let frame = *frame;
                        Ok(inner.frames.buffer(frame))
                    }
                    PageState::Reading { signal, major, .. } => {
                        if !*major {
                            // Demand fault absorbed by in-flight readahead.
                            self.ctrs.readahead_hits.inc();
                        }
                        Err(signal.clone())
                    }
                    PageState::Swapped { slot } => {
                        let slot = *slot;
                        self.start_swap_in(&mut inner, key, slot)
                    }
                }
            }
            None => self.zero_fill(&mut inner, key),
        }
    }

    /// Blocking flavour of [`Vm::try_page`]: runs the engine until the
    /// access succeeds.
    pub fn page_blocking(&self, asid: u32, vpn: u64, write: bool) -> IoBuffer {
        for _ in 0..MAX_FAULT_RETRIES {
            match self.try_page(asid, vpn, write) {
                Ok(buf) => return buf,
                Err(sig) => self.engine.run_until_signal(&sig),
            }
        }
        panic!("page ({asid},{vpn}) did not become resident after {MAX_FAULT_RETRIES} retries");
    }

    /// Drop `pages` pages starting at `base_vpn` (address-space teardown).
    /// Frames return to the pool, swap slots free.
    ///
    /// # Panics
    /// Panics if any page still has I/O in flight — quiesce the engine
    /// first.
    pub fn release_range(&self, asid: u32, base_vpn: u64, pages: u64) {
        let mut inner = self.inner.borrow_mut();
        for vpn in base_vpn..base_vpn + pages {
            let key = (asid, vpn);
            match inner.table.remove(&key) {
                None => {}
                Some(entry) => match entry.state {
                    PageState::Resident { frame, slot, .. } => {
                        inner.frames.free(frame);
                        if let Some(slot) = slot {
                            inner.swap.free_slot(slot);
                        }
                        inner.epoch.set(inner.epoch.get() + 1);
                    }
                    PageState::Swapped { slot } => inner.swap.free_slot(slot),
                    PageState::Reading { .. } | PageState::Writing { .. } => {
                        panic!("release_range with I/O in flight on page ({asid},{vpn})")
                    }
                },
            }
        }
        let waiters: Vec<Signal> = inner.waiters.drain(..).collect();
        drop(inner);
        for w in waiters {
            w.set();
        }
    }

    // -- fault paths --------------------------------------------------------

    fn zero_fill(&self, inner: &mut VmInner, key: PageKey) -> Result<IoBuffer, Signal> {
        if let Some(sig) = self.maybe_throttle(inner) {
            return Err(sig);
        }
        let Some(frame) = self.grab_frame(inner) else {
            return Err(self.frame_wait(inner));
        };
        inner.frames.zero(frame);
        // Zeroing a page costs about a page-sized memcpy.
        let cost = self.cal.memcpy_time(inner.config.page_size);
        self.node.cpu().reserve(self.engine.now(), cost);
        inner.table.insert(
            key,
            PageEntry {
                state: PageState::Resident {
                    frame,
                    slot: None,
                    dirty: true,
                },
                referenced: true,
            },
        );
        inner.clock.push_back(key);
        inner.epoch.set(inner.epoch.get() + 1);
        inner.stats.zero_fills += 1;
        if self.engine.lifecycle_enabled() {
            self.engine.lifecycle().note_fault(false);
        }
        self.maybe_wake_kswapd(inner);
        Ok(inner.frames.buffer(frame))
    }

    fn start_swap_in(
        &self,
        inner: &mut VmInner,
        key: PageKey,
        slot: Slot,
    ) -> Result<IoBuffer, Signal> {
        if let Some(sig) = self.maybe_throttle(inner) {
            return Err(sig);
        }
        let Some(frame) = self.grab_frame(inner) else {
            return Err(self.frame_wait(inner));
        };
        inner.stats.major_faults += 1;
        inner.stats.swap_ins += 1;
        if self.engine.lifecycle_enabled() {
            self.engine.lifecycle().note_fault(true);
        }
        // Kernel fault-path cost.
        let cost = SimDuration::from_nanos(self.cal.compute.fault_ns);
        self.node.cpu().reserve(self.engine.now(), cost);

        let signal = Signal::new("swap-in");
        inner.table.insert(
            key,
            PageEntry {
                state: PageState::Reading {
                    frame,
                    slot,
                    signal: signal.clone(),
                    started: self.engine.now(),
                    major: true,
                },
                referenced: true,
            },
        );
        let backend = inner.swap.backend(slot.dev);
        self.stage_read(inner, key, frame, slot, LoadKind::Demand, &backend);

        // Cluster readahead over contiguous allocated slots.
        let neighbors = inner
            .swap
            .readahead_neighbors(slot, inner.config.readahead_pages.saturating_sub(1));
        for (nslot, nkey) in neighbors {
            if inner.frames.free_count() <= READAHEAD_RESERVE {
                break;
            }
            let swapped_here = matches!(
                inner.table.get(&nkey),
                Some(PageEntry {
                    state: PageState::Swapped { slot } , ..
                }) if *slot == nslot
            );
            if !swapped_here {
                continue;
            }
            let Some(nframe) = self.grab_frame(inner) else {
                break;
            };
            inner.stats.swap_ins += 1;
            inner.stats.readaheads += 1;
            inner.table.insert(
                nkey,
                PageEntry {
                    state: PageState::Reading {
                        frame: nframe,
                        slot: nslot,
                        signal: Signal::new("readahead"),
                        started: self.engine.now(),
                        major: false,
                    },
                    referenced: false,
                },
            );
            self.stage_read(inner, nkey, nframe, nslot, LoadKind::Readahead, &backend);
        }
        backend.reap();
        self.maybe_wake_kswapd(inner);
        Err(signal)
    }

    fn stage_read(
        &self,
        inner: &mut VmInner,
        key: PageKey,
        frame: FrameId,
        slot: Slot,
        kind: LoadKind,
        backend: &Rc<dyn SwapBackend>,
    ) {
        let offset = inner.swap.offset_of(slot);
        let buf = inner.frames.buffer(frame);
        let vm = self.clone();
        backend.load(
            offset,
            kind,
            buf,
            Box::new(move |result| {
                result.unwrap_or_else(|e| panic!("swap-in failed for page {key:?}: {e:?}"));
                vm.finish_read(key);
            }),
        );
    }

    fn finish_read(&self, key: PageKey) {
        let mut inner = self.inner.borrow_mut();
        let entry = inner.table.get(&key).cloned();
        match entry.map(|e| e.state) {
            Some(PageState::Reading {
                frame,
                slot,
                signal,
                started,
                major,
            }) => {
                let now = self.engine.now();
                if self.engine.trace_enabled() {
                    self.engine.tracer().span(
                        "vmsim",
                        if major { "fault" } else { "readahead" },
                        started.as_nanos(),
                        now.as_nanos(),
                        &[("vpn", key.1), ("dev", slot.dev as u64)],
                    );
                }
                if major {
                    self.engine
                        .metrics()
                        .observe("vmsim.fault_latency_us", now.since(started).as_micros_f64());
                }
                inner.table.insert(
                    key,
                    PageEntry {
                        state: PageState::Resident {
                            frame,
                            slot: Some(slot),
                            dirty: false,
                        },
                        referenced: true,
                    },
                );
                inner.clock.push_back(key);
                inner.epoch.set(inner.epoch.get() + 1);
                signal.set();
                self.notify_waiters(&mut inner);
            }
            other => panic!(
                "swap-in completion for page {key:?} in unexpected state (present: {})",
                other.is_some()
            ),
        }
    }

    fn finish_write(&self, key: PageKey) {
        let mut inner = self.inner.borrow_mut();
        let entry = inner.table.get(&key).cloned();
        match entry.map(|e| e.state) {
            Some(PageState::Writing {
                frame,
                slot,
                dirty_again,
            }) => {
                if dirty_again {
                    inner.table.insert(
                        key,
                        PageEntry {
                            state: PageState::Resident {
                                frame,
                                slot: Some(slot),
                                dirty: true,
                            },
                            referenced: true,
                        },
                    );
                    inner.clock.push_back(key);
                } else {
                    inner.table.insert(
                        key,
                        PageEntry {
                            state: PageState::Swapped { slot },
                            referenced: false,
                        },
                    );
                    inner.frames.free(frame);
                }
                inner.epoch.set(inner.epoch.get() + 1);
                if let Some(t) = &mut inner.throttle {
                    t.remaining = t.remaining.saturating_sub(1);
                    if t.remaining == 0 {
                        t.signal.set();
                        let started = t.started;
                        let issued = t.issued;
                        inner.throttle = None;
                        if self.engine.trace_enabled() {
                            self.engine.tracer().span(
                                "vmsim",
                                "reclaim_throttle",
                                started.as_nanos(),
                                self.engine.now().as_nanos(),
                                &[("pageouts", issued as u64)],
                            );
                        }
                    }
                }
                self.notify_waiters(&mut inner);
            }
            other => panic!(
                "swap-out completion for page {key:?} in unexpected state (present: {})",
                other.is_some()
            ),
        }
    }

    // -- frames & reclaim ----------------------------------------------------

    fn grab_frame(&self, inner: &mut VmInner) -> Option<FrameId> {
        inner.frames.alloc()
    }

    /// Linux 2.4-style allocation throttling: when free frames dip below
    /// the low watermark, the allocating task itself performs a reclaim
    /// pass and sleeps until its page-outs complete. This is the mechanism
    /// that couples application progress to the swap device's round-trip
    /// time under heavy dirtying — the effect behind the Figure 5/7 gaps
    /// between local memory and every remote pager.
    fn maybe_throttle(&self, inner: &mut VmInner) -> Option<Signal> {
        if let Some(t) = &inner.throttle {
            // An episode is already in flight: every allocator below the
            // watermark joins the wait (2.4's try_to_free_pages throttled
            // each allocating process, not just the first).
            if inner.frames.free_count() < inner.config.low_watermark {
                return Some(t.signal.clone());
            }
            return None;
        }
        if inner.frames.free_count() >= inner.config.low_watermark {
            return None;
        }
        let issued = self.reclaim(inner, inner.config.reclaim_batch);
        inner.swap.reap_all();
        if issued == 0 {
            // Clean evictions (or nothing evictable): no I/O to wait for.
            return None;
        }
        inner.stats.throttles += 1;
        self.ctrs.throttles.inc();
        let signal = Signal::new("reclaim-throttle");
        inner.throttle = Some(Throttle {
            signal: signal.clone(),
            remaining: issued,
            started: self.engine.now(),
            issued,
        });
        Some(signal)
    }

    /// Register a progress waiter and kick direct reclaim.
    fn frame_wait(&self, inner: &mut VmInner) -> Signal {
        inner.stats.frame_waits += 1;
        let sig = Signal::new("frame-wait");
        inner.waiters.push(sig.clone());
        let batch = inner.config.reclaim_batch;
        let _ = self.reclaim(inner, batch);
        inner.swap.reap_all();
        self.maybe_wake_kswapd(inner);
        sig
    }

    fn notify_waiters(&self, inner: &mut VmInner) {
        for sig in inner.waiters.drain(..) {
            sig.set();
        }
    }

    fn maybe_wake_kswapd(&self, inner: &mut VmInner) {
        if inner.kswapd_active || inner.frames.free_count() >= inner.config.low_watermark {
            return;
        }
        inner.kswapd_active = true;
        let vm = self.clone();
        self.engine
            .schedule_at(self.engine.now(), move || vm.kswapd_tick());
    }

    fn kswapd_tick(&self) {
        let reschedule = {
            let mut inner = self.inner.borrow_mut();
            if inner.frames.free_count() >= inner.config.high_watermark {
                inner.kswapd_active = false;
                false
            } else {
                let batch = inner.config.kswapd_batch;
                let writes = self.reclaim(&mut inner, batch);
                inner.swap.reap_all();
                self.ctrs.kswapd_batches.inc();
                if self.engine.trace_enabled() {
                    self.engine.tracer().instant(
                        "vmsim",
                        "kswapd_batch",
                        self.engine.now().as_nanos(),
                        &[("pageouts", writes as u64)],
                    );
                }
                true
            }
        };
        if reschedule {
            let vm = self.clone();
            let interval = SimDuration::from_nanos(self.inner.borrow().config.kswapd_interval_ns);
            self.engine.schedule_in(interval, move || vm.kswapd_tick());
        }
    }

    /// One reclaim pass: free or start writing out up to `target` pages
    /// using second-chance CLOCK. Staged bios are NOT flushed here; callers
    /// flush so adjacent page-outs merge. Returns the number of page-out
    /// writes issued.
    fn reclaim(&self, inner: &mut VmInner, target: usize) -> usize {
        let mut writes = 0usize;
        let mut progressed = 0usize;
        let mut scanned = 0usize;
        let cap = inner.clock.len() * 2 + 1;
        while progressed < target && scanned < cap {
            let Some(key) = inner.clock.pop_front() else {
                break;
            };
            scanned += 1;
            let Some(entry) = inner.table.get(&key).cloned() else {
                continue; // released
            };
            let PageState::Resident { frame, slot, dirty } = entry.state else {
                continue; // stale clock entry
            };
            if entry.referenced {
                if let Some(e) = inner.table.get_mut(&key) {
                    e.referenced = false;
                }
                inner.clock.push_back(key);
                continue;
            }
            match (dirty, slot) {
                (false, Some(slot)) => {
                    // Clean page whose swap copy is still valid: free now.
                    inner.table.insert(
                        key,
                        PageEntry {
                            state: PageState::Swapped { slot },
                            referenced: false,
                        },
                    );
                    inner.frames.free(frame);
                    inner.epoch.set(inner.epoch.get() + 1);
                    inner.stats.clean_evictions += 1;
                    self.notify_waiters(inner);
                    progressed += 1;
                }
                (dirty_or_fresh, maybe_slot) => {
                    // Dirty (or never-swapped) page: write it out.
                    debug_assert!(dirty_or_fresh || maybe_slot.is_none());
                    let slot = match maybe_slot.or_else(|| inner.swap.alloc_slot(key)) {
                        Some(s) => s,
                        None => {
                            // Swap exhausted: nothing we can do with this
                            // page; keep it resident.
                            inner.clock.push_back(key);
                            continue;
                        }
                    };
                    inner.table.insert(
                        key,
                        PageEntry {
                            state: PageState::Writing {
                                frame,
                                slot,
                                dirty_again: false,
                            },
                            referenced: false,
                        },
                    );
                    inner.stats.swap_outs += 1;
                    let backend = inner.swap.backend(slot.dev);
                    let offset = inner.swap.offset_of(slot);
                    let buf = inner.frames.buffer(frame);
                    let vm = self.clone();
                    backend.store(
                        offset,
                        buf,
                        Box::new(move |result| {
                            result.unwrap_or_else(|e| {
                                panic!("swap-out failed for page {key:?}: {e:?}")
                            });
                            vm.finish_write(key);
                        }),
                    );
                    writes += 1;
                    progressed += 1;
                }
            }
        }
        writes
    }
}
