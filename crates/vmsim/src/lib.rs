#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # vmsim — the Linux 2.4-style virtual memory and swap subsystem
//!
//! HPBD plugs in underneath the kernel VM as a swap device (paper §3.2):
//! when free pages fall below a threshold, `kswapd` pushes pages out to the
//! swap back-store; page-in requests happen on demand at fault time. This
//! crate reproduces that machinery over the workspace's discrete-event
//! engine so real applications (testswap, quicksort, Barnes-Hut) can run
//! against any swap device — HPBD, NBD, or the local disk:
//!
//! * [`Vm`] — frame pool with low/high watermarks, background `kswapd`
//!   reclaim, second-chance (CLOCK) replacement, swap-slot management with
//!   a next-fit allocator (which gives page-out bursts the sequential slot
//!   runs that merge into the ~120 KiB requests of Figure 6), 8-page
//!   swap-in readahead, and a swap-cache-like "clean page keeps its slot"
//!   rule so undirtied pages evict without I/O.
//! * [`SwapBackend`] — the storage boundary. The VM submits page-sized
//!   `store`/`load` operations and reaps completions; [`BlockBackend`]
//!   routes them through the kernel's merging request queue (the paper's
//!   path), [`DirectBackend`] is the frontswap-style user-space path with
//!   busy-poll completion (DESIGN.md §16).
//! * [`AddressSpace`] / [`PagedVec`] — how applications live on the
//!   simulated VM: element accesses fault pages in through the full paging
//!   path. Accesses come in a *try* flavour (returns the completion
//!   [`simcore::Signal`] when the access would block, enabling the
//!   multi-programmed runs of Figure 9) and a *blocking* flavour that runs
//!   the engine until the fault resolves.
//!
//! Simplifications vs. the real 2.4 VM (documented in DESIGN.md): one zone,
//! no file-backed page cache (swap-only workloads), CLOCK instead of the
//! two-list active/inactive scan, and swap readahead that stops at
//! unallocated slots.

pub mod backend;
pub mod config;
pub mod frames;
pub mod paged;
pub mod swap;
pub mod vm;

pub use backend::{
    BlockBackend, DirectBackend, DirectConfig, DirectStats, LoadKind, PageDone, SwapBackend,
};
pub use config::VmConfig;
pub use frames::{FrameId, FramePool};
pub use paged::{AddressSpace, Element, PagedVec};
pub use swap::{Slot, SwapManager};
pub use vm::{Vm, VmStats};
