//! VM tuning parameters.

/// Configuration of the simulated VM subsystem.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Page size in bytes (IA-32: 4096).
    pub page_size: u64,
    /// Physical frames available to applications (local memory size /
    /// page size, minus what the kernel keeps for itself).
    pub total_frames: usize,
    /// `kswapd` wakes when free frames drop below this.
    pub low_watermark: usize,
    /// `kswapd` reclaims until free frames reach this.
    pub high_watermark: usize,
    /// Pages read per swap-in cluster (Linux 2.4 `page_cluster = 3` ⇒ 8).
    pub readahead_pages: usize,
    /// Maximum page-outs issued per synchronous (direct) reclaim pass.
    pub reclaim_batch: usize,
    /// Maximum page-outs per background kswapd pass. Kept small, as in the
    /// 2.4 kernel where the allocating task did most of the reclaim work
    /// itself under streaming write loads.
    pub kswapd_batch: usize,
    /// Virtual-time gap between kswapd passes while it is awake, in ns.
    pub kswapd_interval_ns: u64,
}

impl VmConfig {
    /// A configuration for `local_mem_bytes` of application-visible memory,
    /// with watermarks scaled the way the 2.4 kernel scales `pages_min`/
    /// `pages_high`.
    pub fn for_memory(local_mem_bytes: u64) -> VmConfig {
        let page_size = 4096;
        let total_frames = (local_mem_bytes / page_size).max(16) as usize;
        let low = (total_frames / 64).clamp(4, 256);
        let high = (low * 3).min(total_frames / 2);
        VmConfig {
            page_size,
            total_frames,
            low_watermark: low,
            high_watermark: high,
            readahead_pages: 8,
            reclaim_batch: 32,
            kswapd_batch: 8,
            kswapd_interval_ns: 1_000_000,
        }
    }

    /// Bytes of application-visible local memory.
    pub fn memory_bytes(&self) -> u64 {
        self.total_frames as u64 * self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_are_sane() {
        for mb in [1u64, 8, 64, 512, 2048] {
            let c = VmConfig::for_memory(mb << 20);
            assert!(c.low_watermark < c.high_watermark, "{mb}MB");
            assert!(c.high_watermark <= c.total_frames / 2, "{mb}MB");
            assert!(c.low_watermark >= 4);
        }
    }

    #[test]
    fn memory_roundtrip() {
        let c = VmConfig::for_memory(512 << 20);
        assert_eq!(c.memory_bytes(), 512 << 20);
        assert_eq!(c.total_frames, 131072);
    }

    #[test]
    fn tiny_memory_clamps_to_minimum_frames() {
        let c = VmConfig::for_memory(1024);
        assert_eq!(c.total_frames, 16);
    }
}
