//! The physical frame pool.
//!
//! Frames are fixed 4 KiB buffers reused across their lifetimes (no
//! per-fault allocation). Each frame's storage is an [`IoBuffer`] so it can
//! be handed directly to the block layer as a bio buffer — swap I/O moves
//! data in and out of the *frame itself*, as in the kernel.

use blockdev::{new_buffer, IoBuffer};

/// Index of a physical frame.
pub type FrameId = usize;

/// A pool of `total` page frames with a free list.
pub struct FramePool {
    page_size: usize,
    bufs: Vec<IoBuffer>,
    free: Vec<FrameId>,
}

impl FramePool {
    /// Allocate a pool of `total` frames of `page_size` bytes.
    pub fn new(total: usize, page_size: usize) -> FramePool {
        FramePool {
            page_size,
            bufs: (0..total).map(|_| new_buffer(page_size)).collect(),
            free: (0..total).rev().collect(),
        }
    }

    /// Total frames in the pool.
    pub fn total(&self) -> usize {
        self.bufs.len()
    }

    /// Frames currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Take a frame from the free list. The returned frame's contents are
    /// whatever the previous occupant left — callers must zero or overwrite.
    pub fn alloc(&mut self) -> Option<FrameId> {
        self.free.pop()
    }

    /// Return a frame to the free list.
    ///
    /// # Panics
    /// Panics (in debug) on double free.
    pub fn free(&mut self, frame: FrameId) {
        debug_assert!(!self.free.contains(&frame), "double free of frame {frame}");
        self.free.push(frame);
    }

    /// The frame's backing buffer (shared with the block layer during I/O).
    pub fn buffer(&self, frame: FrameId) -> IoBuffer {
        self.bufs[frame].clone()
    }

    /// Zero a frame (fresh anonymous page).
    pub fn zero(&self, frame: FrameId) {
        self.bufs[frame].borrow_mut().fill(0);
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut p = FramePool::new(4, 4096);
        assert_eq!(p.free_count(), 4);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.free_count(), 2);
        p.free(a);
        assert_eq!(p.free_count(), 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = FramePool::new(2, 4096);
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_none());
    }

    #[test]
    fn buffers_are_page_sized_and_shared() {
        let mut p = FramePool::new(1, 4096);
        let f = p.alloc().unwrap();
        let b1 = p.buffer(f);
        let b2 = p.buffer(f);
        b1.borrow_mut()[0] = 42;
        assert_eq!(b2.borrow()[0], 42);
        assert_eq!(b1.borrow().len(), 4096);
    }

    #[test]
    fn zero_clears_contents() {
        let mut p = FramePool::new(1, 128);
        let f = p.alloc().unwrap();
        p.buffer(f).borrow_mut().fill(7);
        p.zero(f);
        assert!(p.buffer(f).borrow().iter().all(|&b| b == 0));
    }

    #[test]
    #[cfg(debug_assertions)] // the check is a debug_assert (O(n) scan)
    #[should_panic(expected = "double free")]
    fn double_free_caught() {
        let mut p = FramePool::new(2, 64);
        let f = p.alloc().unwrap();
        p.free(f);
        p.free(f);
    }
}
