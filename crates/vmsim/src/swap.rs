//! Swap-space management: devices, slots, and the next-fit slot allocator.
//!
//! Multiple swap devices with priorities are supported, as in the kernel
//! (paper §3.2: "page-out data are placed to these devices based on their
//! priorities"). Slots are allocated next-fit from a moving hint, so a
//! burst of page-outs lands on consecutive slots — that contiguity is what
//! the block layer's merging turns into the large (~120 KiB) requests of
//! Figure 6, and what makes disk swap partially sequential for testswap.

use crate::backend::SwapBackend;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A page-sized slot on a swap device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot {
    /// Swap device id (index into the manager's device table).
    pub dev: u32,
    /// Slot index on that device; byte offset = `index * page_size`.
    pub index: u64,
}

struct SwapDevice {
    backend: Rc<dyn SwapBackend>,
    priority: i32,
    bitmap: Vec<bool>,
    free: u64,
    hint: u64,
}

/// Owner of a swap slot: (address-space id, virtual page number).
pub type PageKey = (u32, u64);

/// The swap-space manager.
pub struct SwapManager {
    page_size: u64,
    devices: Vec<SwapDevice>,
    /// Reverse map slot → owning page, for readahead neighbour lookup.
    rmap: BTreeMap<Slot, PageKey>,
}

impl SwapManager {
    /// Create an empty manager for `page_size`-byte pages.
    pub fn new(page_size: u64) -> SwapManager {
        SwapManager {
            page_size,
            devices: Vec::new(),
            rmap: BTreeMap::new(),
        }
    }

    /// Register a swap backend (its capacity sets the slot count).
    /// Higher `priority` devices fill first. Returns the device id.
    pub fn add_device(&mut self, backend: Rc<dyn SwapBackend>, priority: i32) -> u32 {
        let slots = backend.capacity() / self.page_size;
        assert!(slots > 0, "swap device smaller than one page");
        self.devices.push(SwapDevice {
            backend,
            priority,
            bitmap: vec![false; slots as usize],
            free: slots,
            hint: 0,
        });
        (self.devices.len() - 1) as u32
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Total free slots across devices.
    pub fn free_slots(&self) -> u64 {
        self.devices.iter().map(|d| d.free).sum()
    }

    /// The swap backend of device `dev`.
    pub fn backend(&self, dev: u32) -> Rc<dyn SwapBackend> {
        self.devices[dev as usize].backend.clone()
    }

    /// Reap every device's staged submissions (after staging a batch).
    pub fn reap_all(&self) {
        for d in &self.devices {
            d.backend.reap();
        }
    }

    /// Byte offset of `slot` on its device.
    pub fn offset_of(&self, slot: Slot) -> u64 {
        slot.index * self.page_size
    }

    /// Allocate a slot for `owner`, next-fit on the highest-priority device
    /// with space. Returns `None` when swap is exhausted.
    pub fn alloc_slot(&mut self, owner: PageKey) -> Option<Slot> {
        // Highest priority first; ties broken by registration order, which
        // keeps allocation deterministic.
        let mut order: Vec<usize> = (0..self.devices.len()).collect();
        order.sort_by_key(|&i| (-self.devices[i].priority, i));
        for di in order {
            let dev = &mut self.devices[di];
            if dev.free == 0 {
                continue;
            }
            let n = dev.bitmap.len() as u64;
            for probe in 0..n {
                let idx = (dev.hint + probe) % n;
                if !dev.bitmap[idx as usize] {
                    dev.bitmap[idx as usize] = true;
                    dev.free -= 1;
                    dev.hint = (idx + 1) % n;
                    let slot = Slot {
                        dev: di as u32,
                        index: idx,
                    };
                    self.rmap.insert(slot, owner);
                    return Some(slot);
                }
            }
        }
        None
    }

    /// Release a slot.
    ///
    /// # Panics
    /// Panics if the slot is not allocated (double free).
    pub fn free_slot(&mut self, slot: Slot) {
        let dev = &mut self.devices[slot.dev as usize];
        assert!(
            std::mem::replace(&mut dev.bitmap[slot.index as usize], false),
            "freeing unallocated swap slot {slot:?}"
        );
        dev.free += 1;
        self.rmap.remove(&slot);
    }

    /// The page owning `slot`, if allocated.
    pub fn owner_of(&self, slot: Slot) -> Option<PageKey> {
        self.rmap.get(&slot).copied()
    }

    /// Allocated slots immediately following `slot` on the same device, up
    /// to `k`, stopping at the first unallocated slot — the swap-in
    /// readahead cluster.
    pub fn readahead_neighbors(&self, slot: Slot, k: usize) -> Vec<(Slot, PageKey)> {
        let dev = &self.devices[slot.dev as usize];
        let n = dev.bitmap.len() as u64;
        let mut out = Vec::new();
        for step in 1..=k as u64 {
            let idx = slot.index + step;
            if idx >= n || !dev.bitmap[idx as usize] {
                break;
            }
            let s = Slot {
                dev: slot.dev,
                index: idx,
            };
            match self.owner_of(s) {
                Some(owner) => out.push((s, owner)),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LoadKind, PageDone};
    use blockdev::IoBuffer;
    use simcore::OnlineStats;

    /// Slot-allocation tests need only a capacity — a stub backend keeps
    /// them free of any I/O machinery.
    struct StubBackend {
        capacity: u64,
    }

    impl SwapBackend for StubBackend {
        fn capacity(&self) -> u64 {
            self.capacity
        }
        fn device_name(&self) -> &str {
            "stub"
        }
        fn store(&self, _offset: u64, _buf: IoBuffer, _done: PageDone) {
            unreachable!("slot tests never issue I/O")
        }
        fn load(&self, _offset: u64, _kind: LoadKind, _buf: IoBuffer, _done: PageDone) {
            unreachable!("slot tests never issue I/O")
        }
        fn reap(&self) {}
        fn requests(&self) -> u64 {
            0
        }
        fn mean_request_bytes(&self) -> f64 {
            0.0
        }
        fn read_latency(&self) -> OnlineStats {
            OnlineStats::new()
        }
        fn write_latency(&self) -> OnlineStats {
            OnlineStats::new()
        }
    }

    fn stub(slots: u64) -> Rc<dyn SwapBackend> {
        Rc::new(StubBackend {
            capacity: slots * 4096,
        })
    }

    fn manager_with_dev(slots: u64) -> SwapManager {
        let mut m = SwapManager::new(4096);
        m.add_device(stub(slots), 0);
        m
    }

    #[test]
    fn burst_allocation_is_contiguous() {
        let mut m = manager_with_dev(64);
        let slots: Vec<Slot> = (0..8).map(|i| m.alloc_slot((1, i)).unwrap()).collect();
        for w in slots.windows(2) {
            assert_eq!(w[1].index, w[0].index + 1, "next-fit contiguity");
        }
    }

    #[test]
    fn free_then_realloc_wraps_via_hint() {
        let mut m = manager_with_dev(4);
        let s: Vec<Slot> = (0..4).map(|i| m.alloc_slot((1, i)).unwrap()).collect();
        assert!(m.alloc_slot((1, 99)).is_none(), "exhausted");
        m.free_slot(s[1]);
        let again = m.alloc_slot((1, 99)).unwrap();
        assert_eq!(again.index, 1, "hint wraps to the freed slot");
    }

    #[test]
    fn owner_tracking() {
        let mut m = manager_with_dev(16);
        let s = m.alloc_slot((7, 123)).unwrap();
        assert_eq!(m.owner_of(s), Some((7, 123)));
        m.free_slot(s);
        assert_eq!(m.owner_of(s), None);
    }

    #[test]
    fn readahead_stops_at_hole() {
        let mut m = manager_with_dev(16);
        let s0 = m.alloc_slot((1, 0)).unwrap();
        let s1 = m.alloc_slot((1, 1)).unwrap();
        let s2 = m.alloc_slot((1, 2)).unwrap();
        let _s3 = m.alloc_slot((1, 3)).unwrap();
        m.free_slot(s2); // hole after s1
        let ra = m.readahead_neighbors(s0, 8);
        assert_eq!(ra, vec![(s1, (1, 1))]);
    }

    #[test]
    fn priority_device_fills_first() {
        let mut m = SwapManager::new(4096);
        let low = m.add_device(stub(16), 0);
        let high = m.add_device(stub(16), 10);
        let s = m.alloc_slot((1, 0)).unwrap();
        assert_eq!(s.dev, high);
        let _ = low;
    }

    #[test]
    #[should_panic(expected = "unallocated swap slot")]
    fn double_free_slot_caught() {
        let mut m = manager_with_dev(4);
        let s = m.alloc_slot((1, 0)).unwrap();
        m.free_slot(s);
        m.free_slot(s);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut m = manager_with_dev(2);
        assert!(m.alloc_slot((1, 0)).is_some());
        assert!(m.alloc_slot((1, 1)).is_some());
        assert_eq!(m.free_slots(), 0);
        assert!(m.alloc_slot((1, 2)).is_none());
    }
}
