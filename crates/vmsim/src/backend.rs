//! The vmsim↔storage boundary: [`SwapBackend`] and its two implementations.
//!
//! The VM core used to hard-wire the kernel block layer — every swap I/O
//! went through an `Rc<RequestQueue>` (bio staging, elevator merging,
//! plug/unplug). This module makes that one of two interchangeable paths
//! behind a per-page trait:
//!
//! * [`BlockBackend`] — the paper's kernel path. Pages become bios on the
//!   merging [`RequestQueue`]; [`SwapBackend::reap`] unplugs it. Every
//!   figure built on this adapter is byte-identical to the pre-trait code
//!   (`tests/block_backend_differential.rs` holds the blessed baseline).
//! * [`DirectBackend`] — a frontswap-style user-space path (Hermit /
//!   Fastswap, PAPERS.md): 4 KiB pages go straight to the device as
//!   single-bio requests — no elevator, no queue plug, no per-bio kernel
//!   submission charge — and demand-load completions are busy-polled with
//!   an adaptive poll→event fallback when the swap stream has gone idle.
//!
//! The contract (DESIGN.md §16): `store`/`load` *submit* one page and may
//! defer I/O until [`SwapBackend::reap`]; completion callbacks fire from
//! engine events, never synchronously from the submission call.

use blockdev::{
    Bio, BlockDevice, IoBuffer, IoOp, IoRequest, IoResult, RamDiskDevice, RequestQueue,
};
use netmodel::{Calibration, Node};
use simcore::{Engine, OnlineStats, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Completion callback for one page of swap I/O.
pub type PageDone = Box<dyn FnOnce(IoResult)>;

/// Why a page is being loaded — demand faults are latency-critical (a
/// task is blocked on them) and are the ones the direct path busy-polls;
/// readahead is opportunistic and always completes via events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadKind {
    /// A faulting task is waiting for this page.
    Demand,
    /// Speculative cluster readahead behind a demand fault.
    Readahead,
}

/// A swap storage path: per-page submission with an explicit
/// completion-reaping contract.
///
/// Submission (`store`, `load`) hands the backend one page-sized buffer
/// and a completion callback. A backend may stage submissions; `reap`
/// makes every staged page durable-in-flight (the block path's unplug).
/// Callbacks always fire from engine events — a backend must never
/// complete synchronously inside `store`/`load`/`reap`, because the VM
/// core holds its `RefCell` borrow across those calls.
pub trait SwapBackend {
    /// Usable swap bytes on this backend.
    fn capacity(&self) -> u64;

    /// Name of the underlying device (report labels, lifecycle spans).
    fn device_name(&self) -> &str;

    /// Submit a page-out write of `buf` at byte `offset`.
    fn store(&self, offset: u64, buf: IoBuffer, done: PageDone);

    /// Submit a page-in read into `buf` from byte `offset`.
    fn load(&self, offset: u64, kind: LoadKind, buf: IoBuffer, done: PageDone);

    /// Kick staged submissions toward the device. The VM calls this once
    /// per fault/reclaim batch so backends that merge (the block path)
    /// see whole bursts.
    fn reap(&self);

    /// Device-level requests dispatched so far.
    fn requests(&self) -> u64;

    /// Mean dispatched request size in bytes (0.0 when none).
    fn mean_request_bytes(&self) -> f64;

    /// Per-request read service latency (µs).
    fn read_latency(&self) -> OnlineStats;

    /// Per-request write service latency (µs).
    fn write_latency(&self) -> OnlineStats;
}

// -- the kernel block path ----------------------------------------------

/// Adapter over the merging [`RequestQueue`]: the paper's swap path,
/// bit-for-bit. Pages stage as bios, `reap` unplugs, adjacent pages merge
/// into up-to-128 KiB requests.
pub struct BlockBackend {
    queue: Rc<RequestQueue>,
}

impl BlockBackend {
    /// Wrap an existing request queue.
    pub fn new(queue: Rc<RequestQueue>) -> Rc<BlockBackend> {
        Rc::new(BlockBackend { queue })
    }

    /// The wrapped queue (figure harnesses read its dispatch log).
    pub fn queue(&self) -> &Rc<RequestQueue> {
        &self.queue
    }

    /// Convenience for tests and fixtures: a block path over a fresh
    /// RAM-disk of `capacity` bytes.
    pub fn over_ramdisk(
        engine: &Engine,
        cal: &Rc<Calibration>,
        node: &Node,
        capacity: u64,
        name: &str,
    ) -> Rc<BlockBackend> {
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            capacity,
            name,
        ));
        let queue = Rc::new(RequestQueue::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            dev,
        ));
        BlockBackend::new(queue)
    }
}

impl SwapBackend for BlockBackend {
    fn capacity(&self) -> u64 {
        self.queue.device().capacity()
    }

    fn device_name(&self) -> &str {
        self.queue.device().name()
    }

    fn store(&self, offset: u64, buf: IoBuffer, done: PageDone) {
        self.queue.submit(Bio::new(IoOp::Write, offset, buf, done));
    }

    fn load(&self, offset: u64, _kind: LoadKind, buf: IoBuffer, done: PageDone) {
        self.queue.submit(Bio::new(IoOp::Read, offset, buf, done));
    }

    fn reap(&self) {
        self.queue.flush();
    }

    fn requests(&self) -> u64 {
        self.queue.dispatch_log().borrow().len() as u64
    }

    fn mean_request_bytes(&self) -> f64 {
        let log = self.queue.dispatch_log();
        let log = log.borrow();
        if log.is_empty() {
            0.0
        } else {
            log.iter().map(|r| r.len as f64).sum::<f64>() / log.len() as f64
        }
    }

    fn read_latency(&self) -> OnlineStats {
        self.queue.read_latency()
    }

    fn write_latency(&self) -> OnlineStats {
        self.queue.write_latency()
    }
}

// -- the user-space direct path ------------------------------------------

/// Tuning for the [`DirectBackend`].
#[derive(Clone, Debug)]
pub struct DirectConfig {
    /// CPU cost of one page submission (no bio allocation, no elevator
    /// pass — a store/load call plus a doorbell; cf. the block layer's
    /// 1500 ns per bio).
    pub submit_ns: u64,
    /// Busy-poll budget for a demand load. The faulting CPU spins this
    /// long before giving up and arming an event ("poll timeout").
    pub poll_budget_ns: u64,
    /// Adaptive fallback window: a demand load polls only if the last
    /// completion was at most this long ago, otherwise the stream is
    /// considered idle and the handler sleeps on the event immediately.
    pub idle_threshold_ns: u64,
}

impl Default for DirectConfig {
    fn default() -> DirectConfig {
        DirectConfig {
            submit_ns: 350,
            // One-page HPBD round trips sit in the tens of µs on the 2005
            // calibration; 25 µs of spin covers the common case without
            // burning a whole scheduler quantum on the tail.
            poll_budget_ns: 25_000,
            idle_threshold_ns: 200_000,
        }
    }
}

/// Busy-poll bookkeeping of a [`DirectBackend`].
#[derive(Clone, Debug, Default)]
pub struct DirectStats {
    /// Page-out submissions.
    pub page_stores: u64,
    /// Demand page-in submissions.
    pub page_loads: u64,
    /// Readahead page-in submissions.
    pub readahead_loads: u64,
    /// Demand loads completed while the CPU was busy-polling.
    pub polled: u64,
    /// Of which the poll budget ran out first (tail slept on the event).
    pub poll_timeouts: u64,
    /// Demand loads that skipped polling (idle stream → event wait).
    pub event_waits: u64,
    /// CPU time burned polling, nanoseconds.
    pub poll_cpu_ns: u64,
}

/// What a page submission is, from the poll model's point of view.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PageOp {
    Store,
    Load(LoadKind),
}

struct DirectInner {
    stats: DirectStats,
    read_latency: OnlineStats,
    write_latency: OnlineStats,
    requests: u64,
    total_bytes: u64,
}

/// Frontswap-style user-space path: each page is one single-bio request
/// submitted straight to the device at call time. There is no staging, so
/// [`SwapBackend::reap`] is a no-op; a demand fault's completion latency
/// is charged to the faulting CPU as busy-poll time (bounded by
/// [`DirectConfig::poll_budget_ns`]) whenever the swap stream is hot.
pub struct DirectBackend {
    engine: Engine,
    node: Node,
    dev: Rc<dyn BlockDevice>,
    config: DirectConfig,
    inner: Rc<RefCell<DirectInner>>,
    in_flight: Rc<Cell<u64>>,
    /// Completion recency, for the poll-vs-event decision. `None` until
    /// the first completion.
    last_completion: Rc<Cell<Option<SimTime>>>,
}

impl DirectBackend {
    /// A direct path over `dev` with `config` tuning.
    pub fn new(
        engine: Engine,
        node: Node,
        dev: Rc<dyn BlockDevice>,
        config: DirectConfig,
    ) -> Rc<DirectBackend> {
        Rc::new(DirectBackend {
            engine,
            node,
            dev,
            config,
            inner: Rc::new(RefCell::new(DirectInner {
                stats: DirectStats::default(),
                read_latency: OnlineStats::new(),
                write_latency: OnlineStats::new(),
                requests: 0,
                total_bytes: 0,
            })),
            in_flight: Rc::new(Cell::new(0)),
            last_completion: Rc::new(Cell::new(None)),
        })
    }

    /// Busy-poll bookkeeping so far.
    pub fn stats(&self) -> DirectStats {
        self.inner.borrow().stats.clone()
    }

    /// The device underneath.
    pub fn device(&self) -> &Rc<dyn BlockDevice> {
        &self.dev
    }

    /// Poll-vs-event decision for a demand load submitted now: poll while
    /// the stream is hot (a completion landed within the idle threshold),
    /// fall back to event waits once it has gone cold.
    fn should_poll(&self, now: SimTime) -> bool {
        match self.last_completion.get() {
            Some(t) => now.since(t).as_nanos() <= self.config.idle_threshold_ns,
            None => false,
        }
    }

    fn submit_page(&self, page_op: PageOp, offset: u64, buf: IoBuffer, done: PageDone) {
        let now = self.engine.now();
        let bytes = buf.borrow().len() as u64;
        let op = match page_op {
            PageOp::Store => IoOp::Write,
            PageOp::Load(_) => IoOp::Read,
        };
        // Submission cost: trivial next to the block layer's per-bio
        // charge — that difference is most of the direct path's win.
        self.node
            .cpu()
            .reserve(now, SimDuration::from_nanos(self.config.submit_ns));
        let demand = page_op == PageOp::Load(LoadKind::Demand);
        let polling = demand && self.should_poll(now);
        {
            let mut inner = self.inner.borrow_mut();
            match page_op {
                PageOp::Store => inner.stats.page_stores += 1,
                PageOp::Load(LoadKind::Demand) => inner.stats.page_loads += 1,
                PageOp::Load(LoadKind::Readahead) => inner.stats.readahead_loads += 1,
            }
            inner.requests += 1;
            inner.total_bytes += bytes;
        }
        self.in_flight.set(self.in_flight.get() + 1);

        let mut req = IoRequest::single(Bio::new(op, offset, buf, done));
        let lifecycle = if self.engine.lifecycle_enabled() {
            self.engine.lifecycle().begin(
                simtrace::intern(self.dev.name()),
                op == IoOp::Write,
                bytes,
                now.as_nanos(),
            )
        } else {
            None
        };
        if let Some(ctx) = &lifecycle {
            req.set_lifecycle(ctx.clone());
        }

        let engine = self.engine.clone();
        let node = self.node.clone();
        let inner = self.inner.clone();
        let in_flight = self.in_flight.clone();
        let last_completion = self.last_completion.clone();
        let metrics = self.engine.metrics();
        let poll_budget = self.config.poll_budget_ns;
        let req = req.on_complete(move |result| {
            let done_at = engine.now();
            let elapsed_ns = done_at.since(now).as_nanos();
            let us = done_at.since(now).as_micros_f64();
            in_flight.set(in_flight.get().saturating_sub(1));
            last_completion.set(Some(done_at));
            {
                let mut inner = inner.borrow_mut();
                match op {
                    IoOp::Read => inner.read_latency.record(us),
                    IoOp::Write => inner.write_latency.record(us),
                }
                if polling {
                    // The faulting CPU spun from submission until the
                    // completion landed, bounded by the poll budget; past
                    // the budget it armed an event and slept the tail.
                    let charge = elapsed_ns.min(poll_budget);
                    node.cpu().reserve(now, SimDuration::from_nanos(charge));
                    inner.stats.polled += 1;
                    inner.stats.poll_cpu_ns += charge;
                    if elapsed_ns > poll_budget {
                        inner.stats.poll_timeouts += 1;
                    }
                } else if demand {
                    inner.stats.event_waits += 1;
                }
            }
            let (name, hist) = match op {
                IoOp::Read => ("read", "direct.swap_in_latency_us"),
                IoOp::Write => ("write", "direct.swap_out_latency_us"),
            };
            metrics.observe(hist, us);
            if engine.trace_enabled() {
                engine.tracer().span(
                    "directswap",
                    name,
                    now.as_nanos(),
                    done_at.as_nanos(),
                    &[("bytes", bytes), ("polled", polling as u64)],
                );
            }
            if let Some(ctx) = &lifecycle {
                ctx.end(done_at.as_nanos(), result.is_ok());
            }
        });
        self.dev.submit(req);
    }
}

impl SwapBackend for DirectBackend {
    fn capacity(&self) -> u64 {
        self.dev.capacity()
    }

    fn device_name(&self) -> &str {
        self.dev.name()
    }

    fn store(&self, offset: u64, buf: IoBuffer, done: PageDone) {
        self.submit_page(PageOp::Store, offset, buf, done);
    }

    fn load(&self, offset: u64, kind: LoadKind, buf: IoBuffer, done: PageDone) {
        self.submit_page(PageOp::Load(kind), offset, buf, done);
    }

    fn reap(&self) {
        // Nothing staged: submission already posted the request. The
        // method exists so the VM core can treat both paths uniformly.
    }

    fn requests(&self) -> u64 {
        self.inner.borrow().requests
    }

    fn mean_request_bytes(&self) -> f64 {
        let inner = self.inner.borrow();
        if inner.requests == 0 {
            0.0
        } else {
            inner.total_bytes as f64 / inner.requests as f64
        }
    }

    fn read_latency(&self) -> OnlineStats {
        self.inner.borrow().read_latency.clone()
    }

    fn write_latency(&self) -> OnlineStats {
        self.inner.borrow().write_latency.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::new_buffer;

    fn fixture() -> (Engine, Rc<Calibration>, Node) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        (engine, cal, node)
    }

    fn ram_direct(engine: &Engine, cal: &Rc<Calibration>, node: &Node) -> Rc<DirectBackend> {
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            1 << 20,
            "ram-direct",
        ));
        DirectBackend::new(engine.clone(), node.clone(), dev, DirectConfig::default())
    }

    #[test]
    fn block_backend_round_trips_a_page() {
        let (engine, cal, node) = fixture();
        let backend = BlockBackend::over_ramdisk(&engine, &cal, &node, 1 << 20, "ram");
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(0xAB);
        let wrote = Rc::new(Cell::new(false));
        let w = wrote.clone();
        backend.store(8192, buf, Box::new(move |r| w.set(r.is_ok())));
        backend.reap();
        engine.run_until_idle();
        assert!(wrote.get());
        let out = new_buffer(4096);
        let read = Rc::new(Cell::new(false));
        let r2 = read.clone();
        backend.load(
            8192,
            LoadKind::Demand,
            out.clone(),
            Box::new(move |r| r2.set(r.is_ok())),
        );
        backend.reap();
        engine.run_until_idle();
        assert!(read.get());
        assert!(out.borrow().iter().all(|&b| b == 0xAB));
        assert_eq!(backend.requests(), 2);
    }

    #[test]
    fn block_backend_does_not_dispatch_until_reaped() {
        let (engine, cal, node) = fixture();
        let backend = BlockBackend::over_ramdisk(&engine, &cal, &node, 1 << 20, "ram");
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        backend.store(0, new_buffer(4096), Box::new(move |_| d.set(true)));
        engine.run_until_idle();
        assert!(!done.get(), "staged bio must wait for reap (queue plug)");
        backend.reap();
        engine.run_until_idle();
        assert!(done.get());
    }

    #[test]
    fn direct_backend_needs_no_reap_and_counts_pages() {
        let (engine, cal, node) = fixture();
        let backend = ram_direct(&engine, &cal, &node);
        let done = Rc::new(Cell::new(0u32));
        for i in 0..4u64 {
            let d = done.clone();
            backend.store(
                i * 4096,
                new_buffer(4096),
                Box::new(move |r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            );
        }
        engine.run_until_idle();
        assert_eq!(done.get(), 4, "stores complete without any reap call");
        assert_eq!(backend.stats().page_stores, 4);
        assert_eq!(backend.requests(), 4);
        assert_eq!(backend.mean_request_bytes(), 4096.0);
    }

    #[test]
    fn direct_demand_load_polls_only_when_stream_is_hot() {
        let (engine, cal, node) = fixture();
        let backend = ram_direct(&engine, &cal, &node);
        // Cold start: the first demand load must take the event path.
        backend.load(0, LoadKind::Demand, new_buffer(4096), Box::new(|_| {}));
        engine.run_until_idle();
        let s = backend.stats();
        assert_eq!(s.event_waits, 1, "idle stream must not spin");
        assert_eq!(s.polled, 0);
        // Hot stream: a load right behind a completion busy-polls.
        backend.load(4096, LoadKind::Demand, new_buffer(4096), Box::new(|_| {}));
        engine.run_until_idle();
        let s = backend.stats();
        assert_eq!(s.polled, 1, "hot stream must poll");
        assert!(s.poll_cpu_ns > 0);
        // Readahead never polls regardless of recency.
        backend.load(
            8192,
            LoadKind::Readahead,
            new_buffer(4096),
            Box::new(|_| {}),
        );
        engine.run_until_idle();
        assert_eq!(backend.stats().polled, 1);
    }

    #[test]
    fn direct_poll_timeout_is_bounded_by_budget() {
        let (engine, cal, node) = fixture();
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            1 << 20,
            "ram-slow",
        ));
        let config = DirectConfig {
            poll_budget_ns: 1, // everything times out
            ..DirectConfig::default()
        };
        let backend = DirectBackend::new(engine.clone(), node.clone(), dev, config);
        // Warm the recency window so the second load chooses to poll.
        backend.load(0, LoadKind::Demand, new_buffer(4096), Box::new(|_| {}));
        engine.run_until_idle();
        backend.load(4096, LoadKind::Demand, new_buffer(4096), Box::new(|_| {}));
        engine.run_until_idle();
        let s = backend.stats();
        assert_eq!(s.polled, 1);
        assert_eq!(s.poll_timeouts, 1, "budget 1 ns must always time out");
        assert!(s.poll_cpu_ns <= 1, "charge capped at the budget");
    }
}
