//! Application memory over the simulated VM.
//!
//! A [`PagedVec`] is a typed array whose storage is paged through [`Vm`]:
//! every element access may fault, swap in, trigger reclaim — the full
//! paging path, with real bytes surviving the round trips. This is how the
//! workloads (testswap, quicksort, Barnes-Hut) "run on" the simulated
//! machine while remaining ordinary Rust code.
//!
//! Accesses come in two flavours:
//! * `try_get`/`try_set` return `Err(Signal)` instead of blocking, which
//!   lets a scheduler interleave multiple application instances (Figure 9).
//! * `get`/`set` run the engine until the fault resolves (single-instance
//!   figures).
//!
//! A one-page lookaside cache (invalidated by the VM's epoch counter) keeps
//! the fast path to a few nanoseconds of real time, so paper-scale datasets
//! are affordable.

use crate::vm::Vm;
use blockdev::IoBuffer;
use simcore::Signal;
use std::cell::{Cell, RefCell};

/// Fixed-size plain-data element storable in paged memory.
pub trait Element: Copy {
    /// Encoded size in bytes; must divide the page size.
    const SIZE: usize;
    /// Serialise into `out` (little-endian).
    fn store(&self, out: &mut [u8]);
    /// Deserialise from `inp`.
    fn load(inp: &[u8]) -> Self;
}

macro_rules! impl_element {
    ($($t:ty),*) => {$(
        impl Element for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn store(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn load(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp.try_into().expect("element size"))
            }
        }
    )*};
}

impl_element!(i32, u32, i64, u64, f32, f64);

/// A virtual address space: an asid plus a bump allocator for page ranges.
pub struct AddressSpace {
    vm: Vm,
    asid: u32,
    next_vpn: Cell<u64>,
}

impl AddressSpace {
    /// Create a fresh address space on `vm`.
    pub fn new(vm: &Vm) -> AddressSpace {
        AddressSpace {
            vm: vm.clone(),
            asid: vm.new_asid(),
            next_vpn: Cell::new(0),
        }
    }

    /// The VM backing this space.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Address-space id.
    pub fn asid(&self) -> u32 {
        self.asid
    }

    /// Reserve `pages` virtual pages; returns the base vpn.
    pub fn alloc_pages(&self, pages: u64) -> u64 {
        let base = self.next_vpn.get();
        self.next_vpn.set(base + pages);
        base
    }

    /// Pages reserved so far.
    pub fn reserved_pages(&self) -> u64 {
        self.next_vpn.get()
    }
}

/// A typed array living in paged virtual memory.
pub struct PagedVec<T: Element> {
    vm: Vm,
    /// Shared epoch counter, read without borrowing the VM (hot path).
    epoch: std::rc::Rc<Cell<u64>>,
    asid: u32,
    base_vpn: u64,
    len: usize,
    per_page: usize,
    /// `log2(per_page)` when `per_page` is a power of two (always, for the
    /// built-in element types): index math becomes shift/mask instead of
    /// an integer divide on every access.
    per_page_shift: Option<u32>,
    page_size: usize,
    // One-page lookaside cache: (vpn, epoch, write-intent honoured).
    cached_vpn: Cell<u64>,
    cached_epoch: Cell<u64>,
    cached_write: Cell<bool>,
    cached_buf: RefCell<Option<IoBuffer>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> PagedVec<T> {
    /// Allocate a paged array of `len` elements in `space`. Pages are
    /// faulted lazily on first touch (zero-filled), like anonymous memory.
    pub fn new(space: &AddressSpace, len: usize) -> PagedVec<T> {
        let page_size = space.vm().page_size() as usize;
        assert!(
            T::SIZE > 0 && page_size.is_multiple_of(T::SIZE),
            "element size must divide the page size"
        );
        let per_page = page_size / T::SIZE;
        let pages = len.div_ceil(per_page).max(1) as u64;
        let base_vpn = space.alloc_pages(pages);
        PagedVec {
            vm: space.vm().clone(),
            epoch: space.vm().epoch_handle(),
            asid: space.asid(),
            base_vpn,
            len,
            per_page,
            per_page_shift: per_page
                .is_power_of_two()
                .then(|| per_page.trailing_zeros()),
            page_size,
            cached_vpn: Cell::new(u64::MAX),
            cached_epoch: Cell::new(u64::MAX),
            cached_write: Cell::new(false),
            cached_buf: RefCell::new(None),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages backing the array.
    pub fn pages(&self) -> u64 {
        (self.len.div_ceil(self.per_page).max(1)) as u64
    }

    /// Total footprint in bytes (page-granular).
    pub fn footprint_bytes(&self) -> u64 {
        self.pages() * self.page_size as u64
    }

    #[inline]
    fn locate(&self, index: usize) -> (u64, usize) {
        assert!(index < self.len, "index {index} out of {}", self.len);
        match self.per_page_shift {
            Some(shift) => (
                self.base_vpn + (index >> shift) as u64,
                (index & (self.per_page - 1)) * T::SIZE,
            ),
            None => (
                self.base_vpn + (index / self.per_page) as u64,
                (index % self.per_page) * T::SIZE,
            ),
        }
    }

    /// Run `f` against the page's buffer, resolving through the one-page
    /// lookaside cache. The fast path touches only `Cell`s and the cached
    /// buffer — no VM borrow, no `Rc` clone — which is what makes
    /// element-at-a-time workloads over multi-GiB arrays affordable.
    #[inline]
    fn with_page<R>(
        &self,
        vpn: u64,
        write: bool,
        f: impl FnOnce(&IoBuffer) -> R,
    ) -> Result<R, Signal> {
        if self.cached_vpn.get() == vpn
            && self.cached_epoch.get() == self.epoch.get()
            && (!write || self.cached_write.get())
        {
            if let Some(buf) = self.cached_buf.borrow().as_ref() {
                return Ok(f(buf));
            }
        }
        let buf = self.vm.try_page(self.asid, vpn, write)?;
        self.cached_vpn.set(vpn);
        self.cached_epoch.set(self.epoch.get());
        self.cached_write.set(write);
        let out = f(&buf);
        *self.cached_buf.borrow_mut() = Some(buf);
        Ok(out)
    }

    /// Read element `index`, or the signal to wait on.
    #[inline]
    pub fn try_get(&self, index: usize) -> Result<T, Signal> {
        let (vpn, off) = self.locate(index);
        self.with_page(vpn, false, |buf| {
            let b = buf.borrow();
            T::load(&b[off..off + T::SIZE])
        })
    }

    /// Write element `index`, or the signal to wait on.
    #[inline]
    pub fn try_set(&self, index: usize, value: T) -> Result<(), Signal> {
        let (vpn, off) = self.locate(index);
        self.with_page(vpn, true, |buf| {
            let mut b = buf.borrow_mut();
            value.store(&mut b[off..off + T::SIZE]);
        })
    }

    /// Blocking read (runs the engine through any fault).
    pub fn get(&self, index: usize) -> T {
        loop {
            match self.try_get(index) {
                Ok(v) => return v,
                Err(sig) => self.vm.engine().run_until_signal(&sig),
            }
        }
    }

    /// Blocking write.
    pub fn set(&self, index: usize, value: T) {
        loop {
            match self.try_set(index, value) {
                Ok(()) => return,
                Err(sig) => self.vm.engine().run_until_signal(&sig),
            }
        }
    }

    /// Blocking swap of two elements.
    pub fn swap(&self, i: usize, j: usize) {
        let a = self.get(i);
        let b = self.get(j);
        self.set(i, b);
        self.set(j, a);
    }

    /// Release the backing pages and swap slots. Call with the engine
    /// quiesced (no in-flight I/O on these pages).
    pub fn release(self) {
        self.vm
            .release_range(self.asid, self.base_vpn, self.pages());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmConfig;
    use netmodel::{Calibration, Node};
    use simcore::Engine;
    use std::rc::Rc;

    /// A VM with `frames` frames of local memory and a RamDisk swap device
    /// of `swap_pages` pages (remote-memory-like but trivially local).
    fn vm_fixture(frames: usize, swap_pages: u64) -> (Engine, Vm) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend =
            crate::BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
        vm.add_swap_backend(backend, 0);
        (engine, vm)
    }

    #[test]
    fn fits_in_memory_no_swap() {
        let (_engine, vm) = vm_fixture(64, 64);
        let space = AddressSpace::new(&vm);
        let v: PagedVec<i32> = PagedVec::new(&space, 1000);
        for i in 0..1000 {
            v.set(i, i as i32 * 3);
        }
        for i in 0..1000 {
            assert_eq!(v.get(i), i as i32 * 3);
        }
        assert_eq!(vm.stats().major_faults, 0);
        assert_eq!(vm.stats().swap_outs, 0);
    }

    #[test]
    fn working_set_larger_than_memory_swaps_and_survives() {
        // 32 frames of memory, array needs 128 pages.
        let (engine, vm) = vm_fixture(32, 256);
        let space = AddressSpace::new(&vm);
        let n = 128 * 1024; // i32 elements over 128 pages
        let v: PagedVec<i32> = PagedVec::new(&space, n);
        for i in 0..n {
            v.set(i, i as i32 ^ 0x5A5A);
        }
        // Read everything back — pages must round-trip through swap intact.
        for i in 0..n {
            assert_eq!(v.get(i), i as i32 ^ 0x5A5A, "element {i}");
        }
        let stats = vm.stats();
        assert!(stats.swap_outs > 0, "must have paged out");
        assert!(stats.major_faults > 0, "must have faulted back in");
        engine.run_until_idle();
    }

    #[test]
    fn readahead_reduces_major_faults_for_sequential_access() {
        let (_engine, vm) = vm_fixture(32, 256);
        let space = AddressSpace::new(&vm);
        let n = 128 * 1024;
        let v: PagedVec<i32> = PagedVec::new(&space, n);
        for i in 0..n {
            v.set(i, 1);
        }
        for i in 0..n {
            let _ = v.get(i);
        }
        let stats = vm.stats();
        // 128 pages re-read; readahead in clusters of 8 should make major
        // faults far fewer than pages read.
        assert!(
            stats.readaheads > stats.major_faults,
            "readahead {} vs major {}",
            stats.readaheads,
            stats.major_faults
        );
    }

    #[test]
    fn clean_pages_evict_without_io() {
        let (_engine, vm) = vm_fixture(32, 512);
        let space = AddressSpace::new(&vm);
        let n = 200 * 1024; // 200 pages
        let v: PagedVec<i32> = PagedVec::new(&space, n);
        for i in 0..n {
            v.set(i, 7);
        }
        let outs_after_fill = vm.stats().swap_outs;
        // Two read-only sweeps: pages come in clean and should mostly leave
        // clean (no additional write-out).
        for _ in 0..2 {
            for i in 0..n {
                let _ = v.get(i);
            }
        }
        let stats = vm.stats();
        assert!(stats.clean_evictions > 0, "clean evictions expected");
        let extra_outs = stats.swap_outs - outs_after_fill;
        assert!(
            extra_outs < stats.clean_evictions / 4,
            "read-only sweeps should not rewrite pages: {extra_outs} extra writes vs {} clean",
            stats.clean_evictions
        );
    }

    #[test]
    fn time_advances_under_paging() {
        let (engine, vm) = vm_fixture(32, 256);
        let space = AddressSpace::new(&vm);
        let n = 64 * 1024;
        let v: PagedVec<i64> = PagedVec::new(&space, n);
        for i in 0..n {
            v.set(i, i as i64);
        }
        assert!(engine.now().as_nanos() > 0, "paging must cost virtual time");
    }

    #[test]
    fn release_frees_frames_and_slots() {
        let (engine, vm) = vm_fixture(32, 256);
        let space = AddressSpace::new(&vm);
        let v: PagedVec<i32> = PagedVec::new(&space, 64 * 1024);
        for i in 0..v.len() {
            v.set(i, 1);
        }
        engine.run_until_idle();
        let slots_before = vm.free_swap_slots();
        assert!(slots_before < 256, "the array must be holding swap slots");
        v.release();
        // All frames and every slot back.
        assert_eq!(vm.free_frames(), 32);
        assert_eq!(vm.free_swap_slots(), 256);
        assert!(vm.free_swap_slots() > slots_before);
    }

    #[test]
    fn element_roundtrip_all_types() {
        let (_engine, vm) = vm_fixture(64, 64);
        let space = AddressSpace::new(&vm);
        let vf: PagedVec<f64> = PagedVec::new(&space, 100);
        vf.set(42, -1.5e300);
        assert_eq!(vf.get(42), -1.5e300);
        let vu: PagedVec<u64> = PagedVec::new(&space, 100);
        vu.set(0, u64::MAX);
        assert_eq!(vu.get(0), u64::MAX);
        let vi: PagedVec<i64> = PagedVec::new(&space, 100);
        vi.set(99, i64::MIN);
        assert_eq!(vi.get(99), i64::MIN);
    }

    #[test]
    fn distinct_spaces_do_not_alias() {
        let (_engine, vm) = vm_fixture(64, 128);
        let s1 = AddressSpace::new(&vm);
        let s2 = AddressSpace::new(&vm);
        let a: PagedVec<i32> = PagedVec::new(&s1, 1024);
        let b: PagedVec<i32> = PagedVec::new(&s2, 1024);
        for i in 0..1024 {
            a.set(i, 1);
            b.set(i, 2);
        }
        for i in 0..1024 {
            assert_eq!(a.get(i), 1);
            assert_eq!(b.get(i), 2);
        }
    }

    #[test]
    fn swap_exhaustion_keeps_pages_resident() {
        // Swap much smaller than the working set: the VM cannot evict
        // everything, but data must stay correct for what fits.
        let (_engine, vm) = vm_fixture(64, 16);
        let space = AddressSpace::new(&vm);
        // 40 pages working set, 64 frames: fits in memory, no pressure.
        let v: PagedVec<i32> = PagedVec::new(&space, 40 * 1024);
        for i in 0..v.len() {
            v.set(i, 3);
        }
        for i in 0..v.len() {
            assert_eq!(v.get(i), 3);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_access_panics() {
        let (_engine, vm) = vm_fixture(64, 64);
        let space = AddressSpace::new(&vm);
        let v: PagedVec<i32> = PagedVec::new(&space, 10);
        v.get(10);
    }
}
