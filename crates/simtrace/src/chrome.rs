//! Chrome trace-event JSON exporter.
//!
//! Emits the "JSON Object Format" of the Trace Event specification:
//! an object with a `traceEvents` array, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Each simulation
//! run becomes one *process* (pid), each instrumented component one
//! *thread* (tid) inside it, named via metadata events.
//!
//! Timestamps in the format are microseconds; virtual nanoseconds are
//! rendered as `µs.nnn` with exact integer arithmetic so output is
//! lossless and byte-identical across runs.

use crate::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact ns → µs decimal rendering (no floating point).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn write_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialise several runs' events into one Chrome trace JSON document.
///
/// `runs` pairs a human-readable label (the process name in the viewer)
/// with that run's recorded events. Component→tid assignment is sorted
/// and per-process, so the document is deterministic.
pub fn to_chrome_json(runs: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    for (pid, (label, events)) in runs.iter().enumerate() {
        // Stable component → tid table for this process.
        let mut tids: BTreeMap<&'static str, usize> = BTreeMap::new();
        for ev in events {
            let next = tids.len();
            tids.entry(ev.component).or_insert(next);
        }

        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\""
        );
        write_escaped(&mut out, label);
        out.push_str("\"}}");

        for (component, tid) in &tids {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
            );
            write_escaped(&mut out, component);
            out.push_str("\"}}");
        }

        for ev in events {
            let tid = tids[ev.component];
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":\"");
            write_escaped(&mut out, ev.name);
            out.push_str("\",\"cat\":\"");
            write_escaped(&mut out, ev.component);
            match ev.kind {
                EventKind::Span { dur_ns } => {
                    out.push_str("\",\"ph\":\"X\",\"ts\":");
                    write_us(&mut out, ev.ts_ns);
                    out.push_str(",\"dur\":");
                    write_us(&mut out, dur_ns);
                }
                EventKind::Instant => {
                    out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    write_us(&mut out, ev.ts_ns);
                }
            }
            let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid},\"args\":{{");
            for (i, (key, value)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                write_escaped(&mut out, key);
                let _ = write!(out, "\":{value}");
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::Tracer;

    fn sample_runs() -> Vec<(String, Vec<TraceEvent>)> {
        let t = Tracer::enabled();
        t.span(
            "hpbd",
            "request",
            1_500,
            12_750,
            &[("bytes", 4096), ("req", 1)],
        );
        t.instant("vmsim", "kswapd \"tick\"", 2_000, &[("batch", 32)]);
        t.span("ibsim", "rdma_read", 3_000, 9_000, &[("server", 0)]);
        vec![("HPBD x1".to_string(), t.snapshot())]
    }

    #[test]
    fn exact_microsecond_rendering() {
        let mut s = String::new();
        write_us(&mut s, 12_345_678);
        assert_eq!(s, "12345.678");
        let mut s = String::new();
        write_us(&mut s, 999);
        assert_eq!(s, "0.999");
    }

    #[test]
    fn output_is_valid_json_with_expected_shape() {
        let doc = to_chrome_json(&sample_runs());
        let v = parse(&doc).expect("valid JSON");
        let obj = v.as_object().expect("top-level object");
        let events = obj["traceEvents"].as_array().expect("traceEvents array");
        // 1 process_name + 3 thread_names + 3 events.
        assert_eq!(events.len(), 7);
        for ev in events {
            let e = ev.as_object().expect("event object");
            assert!(e.contains_key("name"));
            assert!(e.contains_key("ph"));
            assert!(e.contains_key("pid"));
            assert!(e.contains_key("tid"));
            let ph = e["ph"].as_string().unwrap();
            match ph {
                "X" => {
                    assert!(e.contains_key("ts"));
                    assert!(e.contains_key("dur"));
                }
                "i" => assert!(e.contains_key("ts")),
                "M" => assert!(e.contains_key("args")),
                other => panic!("unexpected phase {other}"),
            }
        }
    }

    #[test]
    fn span_timestamps_convert_ns_to_us() {
        let doc = to_chrome_json(&sample_runs());
        let v = parse(&doc).unwrap();
        let events = v.as_object().unwrap()["traceEvents"].as_array().unwrap();
        let req = events
            .iter()
            .filter_map(Value::as_object)
            .find(|e| e["name"].as_string() == Some("request"))
            .expect("request span present");
        assert_eq!(req["ts"].as_f64(), Some(1.5));
        assert_eq!(req["dur"].as_f64(), Some(11.25));
        let args = req["args"].as_object().unwrap();
        assert_eq!(args["bytes"].as_f64(), Some(4096.0));
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(
            to_chrome_json(&sample_runs()),
            to_chrome_json(&sample_runs())
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let doc = to_chrome_json(&[]);
        assert!(parse(&doc).is_ok());
    }
}
