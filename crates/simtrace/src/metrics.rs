//! Named counters, gauges and sample histograms with percentile support.
//!
//! Recording is deterministic and side-effect free with respect to the
//! simulation: metrics never touch the engine, the RNG, or virtual time.
//! Iteration order is the `BTreeMap` key order, so rendered summaries
//! are byte-identical across runs.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// A pre-resolved counter handle: incrementing is a `Cell` bump, with no
/// registry lookup on the hot path. Obtain via
/// [`MetricsRegistry::counter_handle`]; clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Increment by 1.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A pre-resolved histogram handle: recording pushes straight into the
/// shared sample vector. Obtain via [`MetricsRegistry::histogram_handle`].
#[derive(Clone, Default)]
pub struct Histogram(Rc<RefCell<Vec<f64>>>);

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.0.borrow_mut().push(v);
    }
}

/// A counter handle that resolves its registry slot on the **first**
/// increment rather than at construction. Hot emit sites that must not
/// create a zero-valued entry when they never fire (snapshots only show
/// counters that incremented at least once) hold one of these.
pub struct LazyCounter {
    reg: MetricsRegistry,
    name: &'static str,
    slot: RefCell<Option<Counter>>,
}

impl LazyCounter {
    /// Increment by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`; the registry entry is created here on first use.
    #[inline]
    pub fn add(&self, n: u64) {
        self.slot
            .borrow_mut()
            .get_or_insert_with(|| self.reg.counter_handle(self.name))
            .add(n);
    }
}

#[derive(Default)]
struct Reg {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A cheap, cloneable registry of named metrics. Clones share storage.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Reg>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        self.inner
            .borrow_mut()
            .counters
            .entry(name)
            .or_default()
            .add(n);
    }

    /// Resolve (creating if absent) a counter once; the returned handle
    /// increments without any registry lookup. Hot emit sites should hold
    /// one of these instead of calling [`MetricsRegistry::inc`] per event.
    pub fn counter_handle(&self, name: &'static str) -> Counter {
        self.inner
            .borrow_mut()
            .counters
            .entry(name)
            .or_default()
            .clone()
    }

    /// A counter handle that defers slot creation to its first increment,
    /// so holding one for a counter that never fires leaves the rendered
    /// metrics unchanged.
    pub fn lazy_counter(&self, name: &'static str) -> LazyCounter {
        LazyCounter {
            reg: self.clone(),
            name,
            slot: RefCell::new(None),
        }
    }

    /// Resolve (creating if absent) a histogram once, for lookup-free
    /// recording on hot paths.
    pub fn histogram_handle(&self, name: &'static str) -> Histogram {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .clone()
    }

    /// Set a gauge to `v` (last write wins).
    #[inline]
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        self.inner.borrow_mut().gauges.insert(name, v);
    }

    /// Ensure a histogram exists so it renders (as `n=0`) even when no
    /// sample ever arrives — used for headline latency metrics.
    pub fn declare_histogram(&self, name: &'static str) {
        self.inner.borrow_mut().histograms.entry(name).or_default();
    }

    /// Record one sample into a histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, v: f64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .observe(v);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .map_or(0, Counter::get)
    }

    /// Freeze the current state into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.borrow();
        MetricsSnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), HistogramSummary::from_samples(&v.0.borrow())))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.inner.borrow();
        f.debug_struct("MetricsRegistry")
            .field("counters", &reg.counters.len())
            .field("gauges", &reg.gauges.len())
            .field("histograms", &reg.histograms.len())
            .finish()
    }
}

/// Summary statistics of one histogram's samples.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 50th percentile (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl HistogramSummary {
    fn from_samples(samples: &[f64]) -> HistogramSummary {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let count = sorted.len() as u64;
        let sum: f64 = sorted.iter().sum();
        let rank = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((q * count as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        HistogramSummary {
            count,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            min: sorted.first().copied().unwrap_or(0.0),
            max: sorted.last().copied().unwrap_or(0.0),
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        }
    }
}

/// An immutable, renderable copy of a registry's state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values, sorted by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Plain-text summary: one metric per line, aligned for reading.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<34} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<34} {v:.3}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<34} n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
                h.count, h.mean, h.p50, h.p95, h.p99, h.max
            );
        }
        out
    }

    /// CSV summary: `kind,name,count,mean,p50,p95,p99,min,max`.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("kind,name,count,mean,p50,p95,p99,min,max\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},{v},,,,,,");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},,{v:.6},,,,,");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                h.count, h.mean, h.p50, h.p95, h.p99, h.min, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.inc("b");
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn handles_share_the_registry_slot() {
        let m = MetricsRegistry::new();
        let c = m.counter_handle("hot");
        m.inc("hot");
        c.inc();
        c.add(3);
        assert_eq!(m.counter("hot"), 5);
        assert_eq!(c.get(), 5);
        let h = m.histogram_handle("lat");
        h.observe(1.0);
        m.observe("lat", 2.0);
        assert_eq!(m.snapshot().histograms["lat"].count, 2);
    }

    #[test]
    fn lazy_counter_defers_slot_creation() {
        let m = MetricsRegistry::new();
        let c = m.lazy_counter("maybe");
        assert!(
            !m.snapshot().counters.contains_key("maybe"),
            "no entry before the first increment"
        );
        c.inc();
        c.add(2);
        assert_eq!(m.counter("maybe"), 3);
    }

    #[test]
    fn clones_share_storage() {
        let m = MetricsRegistry::new();
        let n = m.clone();
        n.inc("x");
        assert_eq!(m.counter("x"), 1);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let m = MetricsRegistry::new();
        for v in 1..=100 {
            m.observe("lat", v as f64);
        }
        let h = &m.snapshot().histograms["lat"];
        assert_eq!(h.count, 100);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_percentiles() {
        let m = MetricsRegistry::new();
        m.observe("one", 7.5);
        let h = &m.snapshot().histograms["one"];
        assert_eq!(h.p50, 7.5);
        assert_eq!(h.p99, 7.5);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.set_gauge("g", 1.5);
        m.observe("h", 2.0);
        let a = m.snapshot().render_text();
        let b = m.snapshot().render_text();
        assert_eq!(a, b);
        let first = a.find("a.first").unwrap();
        let last = a.find("z.last").unwrap();
        assert!(first < last, "counters sorted by name");
        assert!(m.snapshot().render_csv().starts_with("kind,name,"));
    }
}
