//! Causal request-lifecycle tracing: per-request phase attribution and a
//! bounded flight recorder.
//!
//! Flat spans (the [`Tracer`](crate::Tracer)) answer "how long did
//! operation X take in aggregate"; they cannot answer "where did *this*
//! page fault's 48 µs go". This module adds the missing causal layer:
//!
//! * A [`RequestCtx`] is stamped on every logical swap I/O at the
//!   block-queue dispatch boundary and propagated by reference through
//!   the device stack (hpbd client split/retry/failover, ibsim QP
//!   send completions, the server's pull/apply path, the reply).
//! * Every layer appends **marks** — `(time, part, attempt, kind)`
//!   tuples — to the context's log. Marks cost one `Vec` push; nothing
//!   else happens until the request completes.
//! * At completion the mark log is **folded** into six named phase
//!   durations that *tile* the closed interval `[submit, end]`: the sum
//!   of the phases equals the end-to-end latency exactly, in integer
//!   virtual nanoseconds, by construction — including requests that
//!   retried or failed over.
//! * Completed records land in a per-device [`FlightRecorder`]: a
//!   bounded ring of recent records with query helpers (`by_request`,
//!   `slowest`, `phase_breakdown`) and a deterministic JSON dump,
//!   written automatically on the first fault/timeout when a dump
//!   directory is configured.
//!
//! ## Phase taxonomy and the fold
//!
//! A logical request splits into *parts* (extent/stripe splits, mirror
//! legs); each part advances through per-part states as marks arrive.
//! Between two consecutive marks the request as a whole is assigned
//! exactly one phase: the highest-precedence phase among the live
//! parts' states (`RetryOverhead > RdmaPull > ServerService > Wire >
//! Completion > Queue`), or `Queue` when no part is live. An attempt
//! that later times out is *relabelled* wholesale to `RetryOverhead` at
//! fold time — relabelling moves time between buckets but never changes
//! the total, so the tiling invariant survives every recovery path.
//!
//! Times are plain `u64` virtual nanoseconds (this crate sits below
//! `simcore`). Everything is deterministic: same seed, same marks, same
//! fold, byte-identical dumps.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::rc::Rc;

/// Number of attribution phases.
pub const NUM_PHASES: usize = 6;

/// Default flight-recorder ring capacity (records per device).
pub const DEFAULT_RING_CAP: usize = 512;

/// One of the six named phases a request's lifetime decomposes into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Waiting in a queue: block-layer dispatch, credit stalls, pool
    /// waits, the NBD one-at-a-time queue — and any interval with no
    /// live part (the default phase).
    Queue = 0,
    /// A request or reply message is on the wire (posted, not yet
    /// received by the peer).
    Wire = 1,
    /// The server is parsing, fencing, staging or applying the request
    /// (CPU + staging memcpy, both sides of the RDMA transfer).
    ServerService = 2,
    /// A server-initiated RDMA READ/WRITE is moving the page data.
    RdmaPull = 3,
    /// The client is processing the reply (unstage memcpy, scatter,
    /// completion bookkeeping).
    Completion = 4,
    /// Time burned by recovery: a timed-out attempt's whole lifetime
    /// plus the backoff gap until its retry or failover is re-queued.
    RetryOverhead = 5,
}

impl Phase {
    /// Every phase, in index order (pairs with [`Phase::NAMES`]).
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Queue,
        Phase::Wire,
        Phase::ServerService,
        Phase::RdmaPull,
        Phase::Completion,
        Phase::RetryOverhead,
    ];

    /// Stable lower-case names, in index order (used by dumps/tables).
    pub const NAMES: [&'static str; NUM_PHASES] = [
        "queue",
        "wire",
        "server_service",
        "rdma_pull",
        "completion",
        "retry_overhead",
    ];

    /// Precedence when several parts are concurrently live: the segment
    /// is charged to the highest-precedence phase. Recovery dominates
    /// (it is the cost being accounted), then the data path inner-to-
    /// outer, with `Queue` always losing.
    fn precedence(self) -> u8 {
        match self {
            Phase::Queue => 0,
            Phase::Completion => 1,
            Phase::Wire => 2,
            Phase::ServerService => 3,
            Phase::RdmaPull => 4,
            Phase::RetryOverhead => 5,
        }
    }
}

/// What a lifecycle mark records. Each kind drives the owning part's
/// state machine; `WireTx` is informational (the HCA finished the send;
/// the message is still in flight until the peer receives it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkKind {
    /// Part created / re-queued (retry or failover re-entry).
    Queued,
    /// Request message posted to the QP / socket.
    Posted,
    /// HCA send completion (informational; no state change).
    WireTx,
    /// Server received and started servicing the request.
    ServerReceived,
    /// Server posted the RDMA READ/WRITE for the page data.
    RdmaPosted,
    /// The RDMA transfer completed; the server is applying/replying.
    RdmaDone,
    /// Server posted the reply message.
    ReplyPosted,
    /// Client received the reply and is finishing the part.
    ReplyReceived,
    /// Part finished (success, clean failure, or mirror drop).
    Done,
    /// The attempt timed out: the attempt is relabelled
    /// `RetryOverhead` retroactively at fold time.
    TimedOut,
}

/// Per-part live state between marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PartState {
    Queued,
    Wire,
    Server,
    Rdma,
    ReplyWire,
    Completion,
    RetryPending,
    Done,
}

impl PartState {
    fn phase(self) -> Phase {
        match self {
            PartState::Queued => Phase::Queue,
            PartState::Wire | PartState::ReplyWire => Phase::Wire,
            PartState::Server => Phase::ServerService,
            PartState::Rdma => Phase::RdmaPull,
            PartState::Completion => Phase::Completion,
            PartState::RetryPending => Phase::RetryOverhead,
            // Done parts never contribute; callers filter them out.
            PartState::Done => Phase::Queue,
        }
    }
}

/// One mark in a request's log.
#[derive(Clone, Copy, Debug)]
struct Mark {
    ts_ns: u64,
    part: u16,
    attempt: u16,
    kind: MarkKind,
}

/// Fold a mark log into per-phase durations tiling `[submit, end]`.
///
/// The marks must be in append (execution) order; timestamps are
/// clamped into the interval and monotonized, so the tiling — and with
/// it `sum(phases) == end - submit` — holds unconditionally.
fn fold(marks: &[Mark], submit_ns: u64, end_ns: u64) -> [u64; NUM_PHASES] {
    // Attempts that timed out are relabelled wholesale.
    let doomed: BTreeSet<(u16, u16)> = marks
        .iter()
        .filter(|m| m.kind == MarkKind::TimedOut)
        .map(|m| (m.part, m.attempt))
        .collect();
    let mut states: BTreeMap<u16, (u16, PartState)> = BTreeMap::new();
    let current = |states: &BTreeMap<u16, (u16, PartState)>| -> Phase {
        let mut best = Phase::Queue;
        for (&part, &(attempt, state)) in states {
            if state == PartState::Done {
                continue;
            }
            let phase = if doomed.contains(&(part, attempt)) {
                Phase::RetryOverhead
            } else {
                state.phase()
            };
            if phase.precedence() > best.precedence() {
                best = phase;
            }
        }
        best
    };
    let mut phases = [0u64; NUM_PHASES];
    let mut prev = submit_ns;
    for m in marks {
        let ts = m.ts_ns.clamp(prev, end_ns);
        if ts > prev {
            phases[current(&states) as usize] += ts - prev;
            prev = ts;
        }
        let next = match m.kind {
            MarkKind::Queued => Some(PartState::Queued),
            MarkKind::Posted => Some(PartState::Wire),
            MarkKind::WireTx => None,
            MarkKind::ServerReceived => Some(PartState::Server),
            MarkKind::RdmaPosted => Some(PartState::Rdma),
            MarkKind::RdmaDone => Some(PartState::Server),
            MarkKind::ReplyPosted => Some(PartState::ReplyWire),
            MarkKind::ReplyReceived => Some(PartState::Completion),
            MarkKind::Done => Some(PartState::Done),
            MarkKind::TimedOut => Some(PartState::RetryPending),
        };
        if let Some(state) = next {
            states.insert(m.part, (m.attempt, state));
        }
    }
    if end_ns > prev {
        phases[current(&states) as usize] += end_ns - prev;
    }
    phases
}

/// One completed request, as stored in the flight recorder. Plain
/// `Send` data — the parallel sweep runner ships these across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// Logical request id (allocation order at the dispatch boundary).
    pub req: u64,
    /// Write (swap-out) or read (swap-in).
    pub write: bool,
    /// Payload bytes.
    pub bytes: u64,
    /// Dispatch instant, virtual ns.
    pub submit_ns: u64,
    /// Completion instant, virtual ns.
    pub end_ns: u64,
    /// Per-phase durations, indexed by [`Phase`]; sums to
    /// `end_ns - submit_ns` exactly.
    pub phase_ns: [u64; NUM_PHASES],
    /// Physical parts (splits + mirror legs).
    pub parts: u16,
    /// Marks recorded over the lifetime.
    pub marks: u32,
    /// Same-server retries.
    pub retries: u32,
    /// Re-routes to a replica.
    pub failovers: u32,
    /// Completed without error.
    pub ok: bool,
}

impl RequestRecord {
    /// End-to-end latency in virtual ns.
    pub fn e2e_ns(&self) -> u64 {
        self.end_ns - self.submit_ns
    }

    /// Did recovery machinery touch this request?
    pub fn anomalous(&self) -> bool {
        !self.ok || self.retries > 0 || self.failovers > 0
    }

    fn to_json(&self) -> String {
        let phases: Vec<String> = self.phase_ns.iter().map(|p| p.to_string()).collect();
        format!(
            "{{\"req\":{},\"op\":\"{}\",\"bytes\":{},\"submit_ns\":{},\"end_ns\":{},\"phase_ns\":[{}],\"parts\":{},\"marks\":{},\"retries\":{},\"failovers\":{},\"ok\":{}}}",
            self.req,
            if self.write { "write" } else { "read" },
            self.bytes,
            self.submit_ns,
            self.end_ns,
            phases.join(","),
            self.parts,
            self.marks,
            self.retries,
            self.failovers,
            self.ok
        )
    }
}

/// Nearest-rank percentile over an unsorted sample set (matches the
/// metrics histograms' convention). Returns 0 for an empty set.
pub fn percentile_ns(samples: &[u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Bounded ring of recent [`RequestRecord`]s for one device, plus
/// run-length aggregates for exact percentiles.
///
/// The ring is bounded (`cap` records); the per-phase sample vectors
/// grow with the number of completed requests (8 bytes per request per
/// phase) so `phase_breakdown` is exact over the whole run, not just
/// the ring window.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<RequestRecord>,
    phase_samples: [Vec<u64>; NUM_PHASES],
    e2e_samples: Vec<u64>,
    total: u64,
    failed: u64,
    retries: u64,
    failovers: u64,
    sum_mismatches: u64,
}

impl FlightRecorder {
    /// An empty recorder holding at most `cap` recent records.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            ..FlightRecorder::default()
        }
    }

    /// Record a completed request.
    pub fn push(&mut self, record: RequestRecord) {
        self.total += 1;
        if !record.ok {
            self.failed += 1;
        }
        self.retries += record.retries as u64;
        self.failovers += record.failovers as u64;
        // The fold guarantees this by construction; counting (instead of
        // asserting) lets a dump of a live system surface a regression
        // without killing the run, and covers every request ever pushed —
        // not just the bounded ring window.
        if record.phase_ns.iter().sum::<u64>() != record.e2e_ns() {
            self.sum_mismatches += 1;
        }
        for (i, &p) in record.phase_ns.iter().enumerate() {
            self.phase_samples[i].push(p);
        }
        self.e2e_samples.push(record.e2e_ns());
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
    }

    /// Requests recorded over the run (not just the ring window).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The records currently in the ring, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &RequestRecord> {
        self.ring.iter()
    }

    /// The ring record for logical request `req`, if still retained.
    pub fn by_request(&self, req: u64) -> Option<&RequestRecord> {
        self.ring.iter().find(|r| r.req == req)
    }

    /// The `n` slowest requests in the ring, slowest first; ties break
    /// by request id for determinism.
    pub fn slowest(&self, n: usize) -> Vec<&RequestRecord> {
        let mut all: Vec<&RequestRecord> = self.ring.iter().collect();
        all.sort_by_key(|r| (std::cmp::Reverse(r.e2e_ns()), r.req));
        all.truncate(n);
        all
    }

    /// Per-phase nearest-rank percentile (ns) over every request of the
    /// run, indexed by [`Phase`].
    pub fn phase_breakdown(&self, pct: f64) -> [u64; NUM_PHASES] {
        let mut out = [0u64; NUM_PHASES];
        for (i, samples) in self.phase_samples.iter().enumerate() {
            out[i] = percentile_ns(samples, pct);
        }
        out
    }

    /// Deterministic JSON dump: run aggregates plus the ring contents.
    pub fn dump_json(&self, device: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"hpbd-flight-recorder-v1\",\n");
        s.push_str(&format!("  \"device\": \"{device}\",\n"));
        s.push_str(&format!(
            "  \"total\": {}, \"failed\": {}, \"retries\": {}, \"failovers\": {}, \"sum_mismatches\": {},\n",
            self.total, self.failed, self.retries, self.failovers, self.sum_mismatches
        ));
        let names: Vec<String> = Phase::NAMES.iter().map(|n| format!("\"{n}\"")).collect();
        s.push_str(&format!("  \"phases\": [{}],\n", names.join(",")));
        let p99 = self.phase_breakdown(99.0);
        let p99s: Vec<String> = p99.iter().map(|p| p.to_string()).collect();
        s.push_str(&format!("  \"phase_p99_ns\": [{}],\n", p99s.join(",")));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.ring.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&r.to_json());
            if i + 1 < self.ring.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    fn snapshot(&self, device: &str) -> DeviceFlight {
        let mut phase_samples: Vec<Vec<u64>> = self.phase_samples.to_vec();
        for v in &mut phase_samples {
            v.sort_unstable();
        }
        let mut e2e = self.e2e_samples.clone();
        e2e.sort_unstable();
        DeviceFlight {
            device: device.to_string(),
            records: self.ring.iter().cloned().collect(),
            phase_samples,
            e2e_samples: e2e,
            total: self.total,
            failed: self.failed,
            retries: self.retries,
            failovers: self.failovers,
            sum_mismatches: self.sum_mismatches,
        }
    }
}

/// Plain-data snapshot of one device's flight recorder, `Send`-safe for
/// the parallel sweep runner.
#[derive(Clone, Debug)]
pub struct DeviceFlight {
    /// Device label ("hpbd", "nbd", "hda", …).
    pub device: String,
    /// Ring contents at snapshot time, oldest first.
    pub records: Vec<RequestRecord>,
    /// Per-phase duration samples over the whole run, **sorted**,
    /// indexed by [`Phase`].
    pub phase_samples: Vec<Vec<u64>>,
    /// End-to-end latency samples over the whole run, **sorted**.
    pub e2e_samples: Vec<u64>,
    /// Requests completed over the run.
    pub total: u64,
    /// Requests that completed with an error.
    pub failed: u64,
    /// Total same-server retries.
    pub retries: u64,
    /// Total failovers to a replica.
    pub failovers: u64,
    /// Requests whose recorded phases did NOT sum exactly to their
    /// end-to-end latency — always 0 unless the fold has a bug. Counted
    /// over every request of the run, not just the ring window.
    pub sum_mismatches: u64,
}

impl DeviceFlight {
    /// Nearest-rank percentile of one phase's duration, in ns.
    pub fn phase_percentile(&self, phase: Phase, pct: f64) -> u64 {
        sorted_percentile(&self.phase_samples[phase as usize], pct)
    }

    /// Nearest-rank percentile of the end-to-end latency, in ns.
    pub fn e2e_percentile(&self, pct: f64) -> u64 {
        sorted_percentile(&self.e2e_samples, pct)
    }

    /// Sum of one phase across every request, in ns.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phase_samples[phase as usize].iter().sum()
    }
}

fn sorted_percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Whole-run lifecycle snapshot: every device's flight recorder plus
/// the fault counters stamped by vmsim.
#[derive(Clone, Debug, Default)]
pub struct FlightSummary {
    /// Per-device snapshots, in device-name order.
    pub devices: Vec<DeviceFlight>,
    /// Page faults observed at the vmsim boundary.
    pub faults: u64,
    /// Major faults among them (those that went to a swap device).
    pub major_faults: u64,
}

impl FlightSummary {
    /// The snapshot for `device`, if any requests completed on it.
    pub fn device(&self, device: &str) -> Option<&DeviceFlight> {
        self.devices.iter().find(|d| d.device == device)
    }
}

/// The per-request span context: identity, the mark log, and recovery
/// counters. Created at the dispatch boundary, shared by `Rc` through
/// the device stack, folded exactly once at completion.
pub struct RequestCtx {
    req: u64,
    device: &'static str,
    write: bool,
    bytes: u64,
    submit_ns: u64,
    marks: RefCell<Vec<Mark>>,
    parts: Cell<u16>,
    retries: Cell<u32>,
    failovers: Cell<u32>,
    done: Cell<bool>,
    hub: LifecycleHub,
}

impl RequestCtx {
    /// Logical request id.
    pub fn req(&self) -> u64 {
        self.req
    }

    /// Allocate the next part index (splits, mirror legs).
    pub fn alloc_part(&self) -> u16 {
        let p = self.parts.get();
        self.parts.set(p + 1);
        p
    }

    /// Append a mark for `(part, attempt)` at `ts_ns`. Silently ignored
    /// once the request has completed (late HCA completions).
    pub fn mark(&self, part: u16, attempt: u16, kind: MarkKind, ts_ns: u64) {
        if self.done.get() {
            return;
        }
        self.marks.borrow_mut().push(Mark {
            ts_ns,
            part,
            attempt,
            kind,
        });
    }

    /// Count a same-server retry.
    pub fn note_retry(&self) {
        self.retries.set(self.retries.get() + 1);
    }

    /// Count a failover to a replica.
    pub fn note_failover(&self) {
        self.failovers.set(self.failovers.get() + 1);
    }

    /// Complete the request: fold the mark log into phase durations and
    /// push the record into the device's flight recorder. Idempotent.
    pub fn end(&self, end_ns: u64, ok: bool) {
        if self.done.replace(true) {
            return;
        }
        let marks = self.marks.borrow();
        let end_ns = end_ns.max(self.submit_ns);
        let record = RequestRecord {
            req: self.req,
            write: self.write,
            bytes: self.bytes,
            submit_ns: self.submit_ns,
            end_ns,
            phase_ns: fold(&marks, self.submit_ns, end_ns),
            parts: self.parts.get(),
            marks: marks.len() as u32,
            retries: self.retries.get(),
            failovers: self.failovers.get(),
            ok,
        };
        drop(marks);
        self.hub.push_record(self.device, record);
    }
}

struct PhysEntry {
    ctx: Rc<RequestCtx>,
    part: u16,
    attempt: u16,
}

/// One physical request id can carry several logical parts at once when
/// the client merges adjacent extents into a single wire message, so the
/// registry maps each id to a *list* of bindings; a server-side mark for
/// the merged message fans out to every logical part it transported.
struct HubInner {
    ring_cap: usize,
    next_req: Cell<u64>,
    registry: RefCell<BTreeMap<u64, Vec<PhysEntry>>>,
    recorders: RefCell<BTreeMap<&'static str, FlightRecorder>>,
    faults: Cell<u64>,
    major_faults: Cell<u64>,
    dump_dir: RefCell<Option<PathBuf>>,
    dumped: Cell<bool>,
}

/// The engine-held lifecycle hub: allocates request contexts, routes
/// server-side marks back to them by physical request id, and owns the
/// per-device flight recorders.
///
/// A disabled hub (the default) is a no-op handle: every call is an
/// early-out branch, so instrumented code may call it unconditionally —
/// though hot paths should still guard on
/// [`LifecycleHub::is_enabled`] to skip argument marshalling.
#[derive(Clone, Default)]
pub struct LifecycleHub {
    inner: Option<Rc<HubInner>>,
}

impl LifecycleHub {
    /// The no-op hub.
    pub fn disabled() -> LifecycleHub {
        LifecycleHub { inner: None }
    }

    /// An enabled hub with the default ring capacity.
    pub fn enabled() -> LifecycleHub {
        LifecycleHub::with_ring_cap(DEFAULT_RING_CAP)
    }

    /// An enabled hub retaining at most `cap` records per device.
    pub fn with_ring_cap(cap: usize) -> LifecycleHub {
        LifecycleHub {
            inner: Some(Rc::new(HubInner {
                ring_cap: cap.max(1),
                next_req: Cell::new(0),
                registry: RefCell::new(BTreeMap::new()),
                recorders: RefCell::new(BTreeMap::new()),
                faults: Cell::new(0),
                major_faults: Cell::new(0),
                dump_dir: RefCell::new(None),
                dumped: Cell::new(false),
            })),
        }
    }

    /// Is this hub recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Configure automatic dumping: the first anomalous record (fault,
    /// timeout, retry or failover) writes the affected device's ring to
    /// `dir/flight-<device>.json`.
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        if let Some(inner) = &self.inner {
            *inner.dump_dir.borrow_mut() = Some(dir.into());
        }
    }

    /// Start a request context for `device`. Returns `None` when the
    /// hub is disabled.
    pub fn begin(
        &self,
        device: &'static str,
        write: bool,
        bytes: u64,
        submit_ns: u64,
    ) -> Option<Rc<RequestCtx>> {
        let inner = self.inner.as_ref()?;
        let req = inner.next_req.get();
        inner.next_req.set(req + 1);
        Some(Rc::new(RequestCtx {
            req,
            device,
            write,
            bytes,
            submit_ns,
            marks: RefCell::new(Vec::new()),
            parts: Cell::new(0),
            retries: Cell::new(0),
            failovers: Cell::new(0),
            done: Cell::new(false),
            hub: self.clone(),
        }))
    }

    /// Bind physical request id `phys` to `(ctx, part, attempt)` so
    /// server-side and HCA marks can reach the context. Re-registering
    /// (a retry with a bumped attempt) overwrites.
    pub fn register_phys(&self, phys: u64, ctx: &Rc<RequestCtx>, part: u16, attempt: u16) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().insert(
                phys,
                vec![PhysEntry {
                    ctx: ctx.clone(),
                    part,
                    attempt,
                }],
            );
        }
    }

    /// Bind one physical request id to several `(ctx, part, attempt)`
    /// triples at once — a merged wire message carrying multiple logical
    /// parts. Marks routed to `phys` fan out to every binding with the
    /// same timestamp, so each part's phase tiling stays exact.
    pub fn register_phys_many(
        &self,
        phys: u64,
        bindings: impl IntoIterator<Item = (Rc<RequestCtx>, u16, u16)>,
    ) {
        if let Some(inner) = &self.inner {
            let entries: Vec<PhysEntry> = bindings
                .into_iter()
                .map(|(ctx, part, attempt)| PhysEntry { ctx, part, attempt })
                .collect();
            if !entries.is_empty() {
                inner.registry.borrow_mut().insert(phys, entries);
            }
        }
    }

    /// Drop the binding for `phys` (reply consumed, part failed).
    pub fn unregister_phys(&self, phys: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().remove(&phys);
        }
    }

    /// Mark the context bound to `phys`, if any — unknown ids are a
    /// silent no-op (late completions after crash/timeout cleanup).
    pub fn mark_phys(&self, phys: u64, kind: MarkKind, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            let registry = inner.registry.borrow();
            if let Some(entries) = registry.get(&phys) {
                for e in entries {
                    e.ctx.mark(e.part, e.attempt, kind, ts_ns);
                }
            }
        }
    }

    /// Count a page fault at the vmsim boundary.
    pub fn note_fault(&self, major: bool) {
        if let Some(inner) = &self.inner {
            inner.faults.set(inner.faults.get() + 1);
            if major {
                inner.major_faults.set(inner.major_faults.get() + 1);
            }
        }
    }

    fn push_record(&self, device: &'static str, record: RequestRecord) {
        let Some(inner) = &self.inner else {
            return;
        };
        let anomalous = record.anomalous();
        {
            let mut recorders = inner.recorders.borrow_mut();
            recorders
                .entry(device)
                .or_insert_with(|| FlightRecorder::new(inner.ring_cap))
                .push(record);
        }
        if anomalous && !inner.dumped.get() {
            let dir = inner.dump_dir.borrow().clone();
            if let Some(dir) = dir {
                inner.dumped.set(true);
                let _ = self.dump_all(&dir);
            }
        }
    }

    /// Run `f` over `device`'s recorder (query access). Returns `None`
    /// when disabled or no request completed on that device.
    pub fn with_recorder<T>(
        &self,
        device: &str,
        f: impl FnOnce(&FlightRecorder) -> T,
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let recorders = inner.recorders.borrow();
        recorders.get(device).map(f)
    }

    /// The JSON dump for `device`, if it recorded anything.
    pub fn dump_json(&self, device: &str) -> Option<String> {
        self.with_recorder(device, |r| r.dump_json(device))
    }

    /// Write every device's dump to `dir/flight-<device>.json`,
    /// creating the directory.
    pub fn dump_all(&self, dir: impl Into<PathBuf>) -> std::io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let recorders = inner.recorders.borrow();
        for (device, recorder) in recorders.iter() {
            let path = dir.join(format!("flight-{device}.json"));
            std::fs::write(path, recorder.dump_json(device))?;
        }
        Ok(())
    }

    /// Snapshot every device's recorder into plain `Send` data.
    pub fn summary(&self) -> FlightSummary {
        let Some(inner) = &self.inner else {
            return FlightSummary::default();
        };
        let recorders = inner.recorders.borrow();
        FlightSummary {
            devices: recorders
                .iter()
                .map(|(device, r)| r.snapshot(device))
                .collect(),
            faults: inner.faults.get(),
            major_faults: inner.major_faults.get(),
        }
    }
}

impl std::fmt::Debug for LifecycleHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifecycleHub")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(hub: &LifecycleHub) -> Rc<RequestCtx> {
        hub.begin("dev", true, 4096, 100).expect("enabled hub")
    }

    fn record(hub: &LifecycleHub, req: u64) -> RequestRecord {
        hub.with_recorder("dev", |r| r.by_request(req).cloned())
            .flatten()
            .expect("record present")
    }

    #[test]
    fn disabled_hub_is_inert() {
        let hub = LifecycleHub::disabled();
        assert!(!hub.is_enabled());
        assert!(hub.begin("dev", false, 0, 0).is_none());
        hub.mark_phys(7, MarkKind::Posted, 1);
        assert!(hub.summary().devices.is_empty());
        assert!(hub.dump_json("dev").is_none());
    }

    #[test]
    fn simple_request_tiles_exactly() {
        let hub = LifecycleHub::enabled();
        let c = ctx(&hub);
        let p = c.alloc_part();
        c.mark(p, 0, MarkKind::Queued, 100);
        c.mark(p, 0, MarkKind::Posted, 120);
        c.mark(p, 0, MarkKind::ServerReceived, 150);
        c.mark(p, 0, MarkKind::RdmaPosted, 160);
        c.mark(p, 0, MarkKind::RdmaDone, 200);
        c.mark(p, 0, MarkKind::ReplyPosted, 210);
        c.mark(p, 0, MarkKind::ReplyReceived, 240);
        c.mark(p, 0, MarkKind::Done, 250);
        c.end(250, true);
        let r = record(&hub, 0);
        assert_eq!(r.phase_ns.iter().sum::<u64>(), r.e2e_ns());
        assert_eq!(r.phase_ns[Phase::Queue as usize], 20);
        assert_eq!(r.phase_ns[Phase::Wire as usize], 30 + 30);
        assert_eq!(r.phase_ns[Phase::ServerService as usize], 10 + 10);
        assert_eq!(r.phase_ns[Phase::RdmaPull as usize], 40);
        assert_eq!(r.phase_ns[Phase::Completion as usize], 10);
        assert_eq!(r.phase_ns[Phase::RetryOverhead as usize], 0);
    }

    #[test]
    fn timed_out_attempt_relabels_to_retry_overhead() {
        let hub = LifecycleHub::enabled();
        let c = ctx(&hub);
        let p = c.alloc_part();
        c.mark(p, 0, MarkKind::Queued, 100);
        c.mark(p, 0, MarkKind::Posted, 110);
        // The server never answers; the attempt times out at 500.
        c.mark(p, 0, MarkKind::TimedOut, 500);
        c.note_retry();
        // Backoff, then attempt 1 runs cleanly.
        c.mark(p, 1, MarkKind::Queued, 600);
        c.mark(p, 1, MarkKind::Posted, 610);
        c.mark(p, 1, MarkKind::ReplyReceived, 700);
        c.mark(p, 1, MarkKind::Done, 710);
        c.end(710, true);
        let r = record(&hub, 0);
        assert_eq!(r.phase_ns.iter().sum::<u64>(), 610);
        // Attempt 0's whole lifetime (100..500 = 400, queue included via
        // relabel from the first mark at 100... the 10ns pre-post window
        // is attempt 0 too) plus the 100ns backoff gap.
        assert_eq!(r.phase_ns[Phase::RetryOverhead as usize], 400 + 100);
        assert_eq!(r.retries, 1);
    }

    #[test]
    fn concurrent_parts_use_precedence_and_still_tile() {
        let hub = LifecycleHub::enabled();
        let c = ctx(&hub);
        let a = c.alloc_part();
        let b = c.alloc_part();
        c.mark(a, 0, MarkKind::Queued, 100);
        c.mark(b, 0, MarkKind::Queued, 100);
        c.mark(a, 0, MarkKind::Posted, 110);
        c.mark(b, 0, MarkKind::Posted, 120);
        c.mark(a, 0, MarkKind::RdmaPosted, 130);
        // 130..150: part a in RdmaPull (precedence) while b is on the wire.
        c.mark(a, 0, MarkKind::Done, 150);
        c.mark(b, 0, MarkKind::ReplyReceived, 180);
        c.mark(b, 0, MarkKind::Done, 200);
        c.end(200, true);
        let r = record(&hub, 0);
        assert_eq!(r.phase_ns.iter().sum::<u64>(), 100);
        assert_eq!(r.phase_ns[Phase::Queue as usize], 10);
        assert_eq!(r.phase_ns[Phase::RdmaPull as usize], 20);
        // 110..120 one leg posted, 120..130 both, 150..180 b still out.
        assert_eq!(r.phase_ns[Phase::Wire as usize], 10 + 10 + 30);
        assert_eq!(r.phase_ns[Phase::Completion as usize], 20);
        assert_eq!(r.parts, 2);
    }

    #[test]
    fn marks_after_end_are_dropped_and_end_is_idempotent() {
        let hub = LifecycleHub::enabled();
        let c = ctx(&hub);
        let p = c.alloc_part();
        c.mark(p, 0, MarkKind::Queued, 100);
        c.end(200, true);
        c.mark(p, 0, MarkKind::WireTx, 300); // late HCA completion
        c.end(900, false); // double-complete must not re-record
        let r = record(&hub, 0);
        assert_eq!(r.end_ns, 200);
        assert!(r.ok);
        assert_eq!(hub.with_recorder("dev", |r| r.total()), Some(1));
    }

    #[test]
    fn phys_registry_routes_and_tolerates_unknown_ids() {
        let hub = LifecycleHub::enabled();
        let c = ctx(&hub);
        let p = c.alloc_part();
        c.mark(p, 0, MarkKind::Posted, 110);
        hub.register_phys(42, &c, p, 0);
        hub.mark_phys(42, MarkKind::ServerReceived, 130);
        hub.mark_phys(999, MarkKind::ServerReceived, 140); // unknown: no-op
        hub.unregister_phys(42);
        hub.mark_phys(42, MarkKind::RdmaPosted, 150); // after unregister: no-op
        c.end(200, true);
        let r = record(&hub, 0);
        assert_eq!(r.marks, 2);
        assert_eq!(r.phase_ns[Phase::ServerService as usize], 70);
    }

    #[test]
    fn ring_is_bounded_but_aggregates_cover_the_run() {
        let hub = LifecycleHub::with_ring_cap(4);
        for i in 0..10u64 {
            let c = ctx(&hub);
            let p = c.alloc_part();
            c.mark(p, 0, MarkKind::Posted, 100);
            c.end(100 + (i + 1) * 10, true);
        }
        hub.with_recorder("dev", |r| {
            assert_eq!(r.records().count(), 4);
            assert_eq!(r.total(), 10);
            assert!(r.by_request(0).is_none(), "oldest evicted");
            assert!(r.by_request(9).is_some());
            let slowest = r.slowest(2);
            assert_eq!(slowest[0].req, 9);
            assert_eq!(slowest[1].req, 8);
            // p50 over ALL 10 requests: e2e 10,20..100 → nearest-rank 50.
            assert_eq!(
                percentile_ns(&(1..=10).map(|i| i * 10).collect::<Vec<_>>(), 50.0),
                50
            );
        })
        .expect("recorder exists");
    }

    #[test]
    fn dump_is_valid_json_and_deterministic() {
        let run = || {
            let hub = LifecycleHub::enabled();
            let c = ctx(&hub);
            let p = c.alloc_part();
            c.mark(p, 0, MarkKind::Posted, 110);
            c.mark(p, 0, MarkKind::ReplyReceived, 150);
            c.end(160, true);
            hub.dump_json("dev").expect("dump")
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same marks must dump byte-identically");
        let doc = crate::json::parse(&a).expect("well-formed dump");
        let root = doc.as_object().expect("object");
        assert_eq!(root["schema"].as_string(), Some("hpbd-flight-recorder-v1"));
        assert_eq!(root["records"].as_array().expect("records").len(), 1);
    }

    #[test]
    fn anomalous_record_triggers_one_auto_dump() {
        let dir = std::env::temp_dir().join(format!("hpbd-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let hub = LifecycleHub::enabled();
        hub.set_dump_dir(&dir);
        let c = ctx(&hub);
        c.end(200, true); // healthy: no dump
        assert!(!dir.exists());
        let c = ctx(&hub);
        c.note_retry();
        c.end(300, true); // retried: dump fires once
        assert!(dir.join("flight-dev.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_is_plain_send_data() {
        fn assert_send<T: Send>(_: &T) {}
        let hub = LifecycleHub::enabled();
        let c = ctx(&hub);
        c.note_failover();
        c.end(500, false);
        hub.note_fault(true);
        let s = hub.summary();
        assert_send(&s);
        assert_eq!(s.faults, 1);
        assert_eq!(s.major_faults, 1);
        let d = s.device("dev").expect("device snapshot");
        assert_eq!(d.total, 1);
        assert_eq!(d.failed, 1);
        assert_eq!(d.failovers, 1);
        assert_eq!(d.e2e_percentile(50.0), 400);
    }
}
