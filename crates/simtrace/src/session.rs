//! Multi-run trace collection for the bench binaries.
//!
//! A figure regenerates several scenarios (local, HPBD, NBD-IPoIB, …);
//! each gets its own [`Tracer`] and appears as a separate *process* in
//! the exported Chrome trace, labelled with the configuration name.

use crate::chrome::to_chrome_json;
use crate::Tracer;
use std::io;
use std::path::Path;

/// Collects per-run tracers and writes one combined trace file.
#[derive(Debug, Default)]
pub struct TraceSession {
    enabled: bool,
    runs: Vec<(String, Tracer)>,
}

impl TraceSession {
    /// A session that hands out enabled or disabled tracers.
    pub fn new(enabled: bool) -> TraceSession {
        TraceSession {
            enabled,
            runs: Vec::new(),
        }
    }

    /// A session whose tracers are all no-ops.
    pub fn disabled() -> TraceSession {
        TraceSession::new(false)
    }

    /// Is tracing on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Create (and remember) the tracer for one labelled run.
    pub fn tracer_for(&mut self, label: &str) -> Tracer {
        let tracer = if self.enabled {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        self.runs.push((label.to_string(), tracer.clone()));
        tracer
    }

    /// Install a labelled run from pre-collected events. The parallel sweep
    /// runner snapshots each worker's event buffer ([`Tracer::snapshot`] is
    /// `Send`-safe data) and reassembles the session in deterministic cell
    /// order, so the exported file is byte-identical to a sequential run.
    pub fn push_run(&mut self, label: &str, events: Vec<crate::TraceEvent>) {
        let tracer = if self.enabled {
            Tracer::from_events(events)
        } else {
            Tracer::disabled()
        };
        self.runs.push((label.to_string(), tracer));
    }

    /// Install a labelled run whose events were collected by *partitions*
    /// of one sharded simulation (`simcore::parallel`). Buffers are merged
    /// by concatenation in partition-id order — never by completion order —
    /// so the run's event stream, and therefore every exported trace byte,
    /// is identical no matter how many worker threads produced the buffers.
    pub fn push_partitioned_run(&mut self, label: &str, partitions: Vec<Vec<crate::TraceEvent>>) {
        self.push_run(label, partitions.concat());
    }

    /// Serialise all runs into one Chrome trace JSON document.
    pub fn to_chrome_json(&self) -> String {
        let runs: Vec<(String, Vec<crate::TraceEvent>)> = self
            .runs
            .iter()
            .map(|(label, tracer)| (label.clone(), tracer.snapshot()))
            .collect();
        to_chrome_json(&runs)
    }

    /// Write the combined trace to `path`.
    pub fn write_chrome(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Total events recorded across all runs.
    pub fn total_events(&self) -> usize {
        self.runs.iter().map(|(_, t)| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn disabled_session_hands_out_noop_tracers() {
        let mut s = TraceSession::disabled();
        let t = s.tracer_for("run");
        t.span("a", "b", 0, 1, &[]);
        assert_eq!(s.total_events(), 0);
        assert!(parse(&s.to_chrome_json()).is_ok());
    }

    #[test]
    fn enabled_session_collects_runs_in_order() {
        let mut s = TraceSession::new(true);
        let t1 = s.tracer_for("first");
        let t2 = s.tracer_for("second");
        t1.instant("x", "e1", 5, &[]);
        t2.instant("y", "e2", 6, &[]);
        assert_eq!(s.total_events(), 2);
        let doc = s.to_chrome_json();
        let v = parse(&doc).unwrap();
        let events = v.as_object().unwrap()["traceEvents"].as_array().unwrap();
        // 2 process_name + 2 thread_name + 2 events.
        assert_eq!(events.len(), 6);
        assert!(doc.find("first").unwrap() < doc.find("second").unwrap());
    }

    #[test]
    fn partitioned_run_merges_in_partition_order() {
        let collect = |bufs: Vec<Vec<crate::TraceEvent>>| {
            let mut s = TraceSession::new(true);
            s.push_partitioned_run("sharded", bufs);
            s.to_chrome_json()
        };
        let t = Tracer::enabled();
        t.instant("p0", "a", 5, &[]);
        let p0 = t.snapshot();
        let t = Tracer::enabled();
        t.instant("p1", "b", 5, &[]);
        let p1 = t.snapshot();

        // Same partition buffers → same bytes, independent of how workers
        // happened to finish; swapped partition order is a different doc.
        let merged = collect(vec![p0.clone(), p1.clone()]);
        assert_eq!(merged, collect(vec![p0.clone(), p1.clone()]));
        assert_ne!(merged, collect(vec![p1, p0]));
    }
}
