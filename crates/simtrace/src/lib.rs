//! Structured tracing and metrics on the virtual clock.
//!
//! The suite's argument is a latency story: where virtual time goes
//! between a page fault and its completion. This crate provides the
//! unified observability layer for that story:
//!
//! * [`Tracer`] — a cheap handle emitting typed spans and instant events
//!   `(component, op, start/end virtual-ns, bytes, request id, server id)`.
//!   A disabled tracer is a no-op: it allocates nothing, schedules
//!   nothing, and has zero behavioral impact on a simulation.
//! * [`MetricsRegistry`] — named counters, gauges and sample histograms
//!   with p50/p95/p99 support, snapshotted into plain-text or CSV
//!   summaries.
//! * [`chrome`] — a Chrome trace-event JSON exporter (loadable in
//!   Perfetto / `chrome://tracing`), converting virtual nanoseconds to
//!   the format's microsecond timestamps losslessly.
//! * [`TraceSession`] — collects the tracers of several simulation runs
//!   (one per figure configuration) into one multi-process trace file.
//!
//! Everything here is deterministic: with the same seed, a traced run
//! produces byte-identical output. Times are plain `u64` nanoseconds so
//! the crate sits below `simcore` in the dependency graph and the
//! [`simcore::Engine`]-held tracer is reachable from every layer.
//!
//! [`simcore::Engine`]: ../simcore/struct.Engine.html
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod lifecycle;
mod metrics;
mod session;

pub use lifecycle::{
    DeviceFlight, FlightRecorder, FlightSummary, LifecycleHub, MarkKind, Phase, RequestCtx,
    RequestRecord, NUM_PHASES,
};
pub use metrics::{
    Counter, Histogram, HistogramSummary, LazyCounter, MetricsRegistry, MetricsSnapshot,
};
pub use session::TraceSession;

use std::cell::{Ref, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};

/// Intern a dynamically-built label, returning a `&'static str` usable as a
/// [`TraceEvent`] component or name.
///
/// Event names are `&'static str` so the hot emit path copies a pointer
/// instead of allocating; labels composed at runtime (per-server names,
/// per-run labels) go through this table once and reuse the same leaked
/// allocation on every subsequent call. The table grows with the number of
/// *distinct* labels, which is tiny and bounded by configuration, not by
/// event volume.
pub fn intern(label: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut table = table.lock().expect("intern table poisoned");
    if let Some(&s) = table.get(label) {
        return s;
    }
    let leaked: &'static str = Box::leak(label.to_string().into_boxed_str());
    table.insert(label.to_string(), leaked);
    leaked
}

/// Maximum number of arguments a [`TraceEvent`] carries.
pub const MAX_ARGS: usize = 6;

/// Inline, fixed-capacity argument list — `(key, value)` pairs stored in the
/// event itself so recording never heap-allocates. Dereferences to a slice.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ArgList {
    len: u8,
    items: [(&'static str, u64); MAX_ARGS],
}

impl ArgList {
    /// An empty argument list.
    pub const fn new() -> ArgList {
        ArgList {
            len: 0,
            items: [("", 0); MAX_ARGS],
        }
    }

    /// Copy up to [`MAX_ARGS`] pairs from `args` (overflow is a bug in the
    /// instrumentation site, caught in debug builds).
    pub fn from_slice(args: &[(&'static str, u64)]) -> ArgList {
        debug_assert!(args.len() <= MAX_ARGS, "too many trace args: {args:?}");
        let mut list = ArgList::new();
        for &pair in args.iter().take(MAX_ARGS) {
            list.items[list.len as usize] = pair;
            list.len += 1;
        }
        list
    }

    /// The recorded pairs.
    pub fn as_slice(&self) -> &[(&'static str, u64)] {
        &self.items[..self.len as usize]
    }
}

impl Default for ArgList {
    fn default() -> ArgList {
        ArgList::new()
    }
}

impl std::ops::Deref for ArgList {
    type Target = [(&'static str, u64)];
    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl fmt::Debug for ArgList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq<[(&'static str, u64)]> for ArgList {
    fn eq(&self, other: &[(&'static str, u64)]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[(&'static str, u64); N]> for ArgList {
    fn eq(&self, other: &[(&'static str, u64); N]) -> bool {
        self.as_slice() == other
    }
}

impl FromIterator<(&'static str, u64)> for ArgList {
    fn from_iter<I: IntoIterator<Item = (&'static str, u64)>>(iter: I) -> ArgList {
        let mut list = ArgList::new();
        for pair in iter.into_iter().take(MAX_ARGS) {
            list.items[list.len as usize] = pair;
            list.len += 1;
        }
        list
    }
}

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An operation with duration: `ts_ns .. ts_ns + dur_ns`.
    Span {
        /// Duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker.
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Component (maps to a Chrome trace thread): `"hpbd"`, `"ibsim"`, …
    pub component: &'static str,
    /// Operation name: `"request"`, `"rdma_read"`, `"fault"`, …
    pub name: &'static str,
    /// Start time (spans) or occurrence time (instants), virtual ns.
    pub ts_ns: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Numeric arguments (`bytes`, `req`, `server`, …), shown in the
    /// trace viewer's detail pane. Kept as integers for determinism and
    /// stored inline (no per-event allocation).
    pub args: ArgList,
}

struct TracerInner {
    events: RefCell<Vec<TraceEvent>>,
}

/// A cheap, cloneable tracing handle.
///
/// Cloning shares the event buffer. The default handle is disabled:
/// every emit is an early-out branch, so instrumented code can call it
/// unconditionally.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<TracerInner>>,
}

impl Tracer {
    /// A disabled (no-op) tracer.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with an empty event buffer.
    pub fn enabled() -> Tracer {
        Tracer::from_events(Vec::new())
    }

    /// An enabled tracer pre-filled with `events` — used to reassemble a
    /// [`TraceSession`] from event buffers collected on worker threads.
    pub fn from_events(events: Vec<TraceEvent>) -> Tracer {
        Tracer {
            inner: Some(Rc::new(TracerInner {
                events: RefCell::new(events),
            })),
        }
    }

    /// Is this handle recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a span from `start_ns` to `end_ns` (both virtual ns).
    #[inline]
    pub fn span(
        &self,
        component: &'static str,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            inner.events.borrow_mut().push(TraceEvent {
                component,
                name,
                ts_ns: start_ns,
                kind: EventKind::Span {
                    dur_ns: end_ns.saturating_sub(start_ns),
                },
                args: ArgList::from_slice(args),
            });
        }
    }

    /// Record an instant event at `ts_ns`.
    #[inline]
    pub fn instant(
        &self,
        component: &'static str,
        name: &'static str,
        ts_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            inner.events.borrow_mut().push(TraceEvent {
                component,
                name,
                ts_ns,
                kind: EventKind::Instant,
                args: ArgList::from_slice(args),
            });
        }
    }

    /// Number of events recorded so far (0 for a disabled tracer).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.events.borrow().len())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the recorded events (empty slice semantics for disabled
    /// tracers are handled by [`Tracer::snapshot`]).
    pub fn events(&self) -> Option<Ref<'_, Vec<TraceEvent>>> {
        self.inner.as_ref().map(|inner| inner.events.borrow())
    }

    /// Clone out the recorded events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.events.borrow().clone())
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span("hpbd", "request", 0, 100, &[("bytes", 4096)]);
        t.instant("hpbd", "stall", 50, &[]);
        assert!(!t.is_enabled());
        assert_eq!(t.len(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::enabled();
        t.span("ibsim", "send", 10, 30, &[("bytes", 64)]);
        t.instant("vmsim", "kswapd", 20, &[("batch", 8)]);
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "send");
        assert_eq!(events[0].kind, EventKind::Span { dur_ns: 20 });
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[1].args, [("batch", 8)]);
    }

    #[test]
    fn interned_labels_are_pointer_stable() {
        let name = format!("server-{}", 3);
        let a = intern(&name);
        let b = intern("server-3");
        assert_eq!(a, "server-3");
        assert!(std::ptr::eq(a, b), "same label must intern to one address");
    }

    #[test]
    fn arg_list_truncates_at_capacity() {
        let many: Vec<(&'static str, u64)> = (0..10).map(|i| ("k", i)).collect();
        // Debug builds assert; release builds truncate. Build the list via
        // the iterator path, which always truncates silently.
        let list: ArgList = many.iter().copied().collect();
        assert_eq!(list.len(), MAX_ARGS);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        u.instant("x", "y", 1, &[]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn span_duration_saturates() {
        let t = Tracer::enabled();
        t.span("x", "backwards", 10, 5, &[]);
        assert_eq!(t.snapshot()[0].kind, EventKind::Span { dur_ns: 0 });
    }
}
