//! A minimal JSON parser, used to validate exported traces in tests and
//! tooling without external dependencies. Supports the full JSON grammar
//! (RFC 8259) minus some exotic number forms; good enough to verify that
//! the Chrome exporter emits well-formed documents.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_string(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

/// Parse a JSON document. The entire input must be consumed.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o["a"].as_array().unwrap().len(), 3);
        assert_eq!(o["a"].as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(o["b"].as_object().unwrap()["c"].as_string(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_string(), Some("Aé"));
    }
}
