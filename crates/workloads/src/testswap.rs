//! The `testswap` microbenchmark (paper §6.1).
//!
//! "Allocates a 1 GB array and sequentially writes integers into this
//! array." Sequential writes dirty page after page, forcing a steady
//! page-out stream once local memory fills — the workload behind Figures 5
//! and 6.

use crate::task::{Step, Task};
use simcore::Signal;
use vmsim::{AddressSpace, PagedVec};

/// Sequential integer-write task over a paged array.
pub struct TestswapTask {
    data: PagedVec<i32>,
    next: usize,
    ns_per_op: u64,
    /// Retry state after a block (the access is idempotent; we simply
    /// re-run it).
    pending: Option<Signal>,
}

impl TestswapTask {
    /// Allocate `elements` i32s in `space`. `ns_per_op` is the calibrated
    /// per-write compute cost.
    pub fn new(space: &AddressSpace, elements: usize, ns_per_op: u64) -> TestswapTask {
        TestswapTask {
            data: PagedVec::new(space, elements),
            next: 0,
            ns_per_op,
            pending: None,
        }
    }

    /// Elements written so far.
    pub fn progress(&self) -> usize {
        self.next
    }

    /// The underlying array (for post-run verification).
    pub fn data(&self) -> &PagedVec<i32> {
        &self.data
    }
}

impl Task for TestswapTask {
    fn step(&mut self, max_ops: u64) -> Step {
        self.pending = None;
        let mut budget = max_ops;
        while budget > 0 {
            if self.next == self.data.len() {
                return Step::Done;
            }
            match self.data.try_set(self.next, self.next as i32) {
                Ok(()) => {
                    self.next += 1;
                    budget -= 1;
                }
                Err(sig) => {
                    self.pending = Some(sig.clone());
                    return Step::Blocked(sig);
                }
            }
        }
        Step::Ran
    }

    fn ns_per_op(&self) -> u64 {
        self.ns_per_op
    }

    fn name(&self) -> &str {
        "testswap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Scheduler;
    use netmodel::{Calibration, Node};
    use simcore::Engine;
    use std::rc::Rc;
    use vmsim::{Vm, VmConfig};

    fn vm_with_ram_swap(frames: usize, swap_pages: u64) -> (Engine, Vm) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend =
            vmsim::BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
        vm.add_swap_backend(backend, 0);
        (engine, vm)
    }

    #[test]
    fn completes_within_memory() {
        let (engine, vm) = vm_with_ram_swap(64, 64);
        let space = AddressSpace::new(&vm);
        let mut t = TestswapTask::new(&space, 10_000, 13);
        let sched = Scheduler::new(engine.clone(), 2);
        let done = sched.run_one(&mut t);
        assert_eq!(t.progress(), 10_000);
        // ~130us of compute.
        assert!(done.as_nanos() >= 130_000);
        assert_eq!(vm.stats().major_faults, 0);
    }

    #[test]
    fn pages_out_when_oversubscribed_and_data_survives() {
        let (engine, vm) = vm_with_ram_swap(32, 512);
        let space = AddressSpace::new(&vm);
        let n = 100 * 1024; // 100 pages of i32
        let mut t = TestswapTask::new(&space, n, 13);
        let sched = Scheduler::new(engine.clone(), 2);
        sched.run_one(&mut t);
        assert!(vm.stats().swap_outs > 0);
        // Spot-check data integrity through swap.
        for &i in &[0usize, 1, n / 2, n - 1] {
            assert_eq!(t.data().get(i), i as i32);
        }
    }

    #[test]
    fn oversubscribed_run_is_slower_than_in_memory() {
        let run = |frames: usize| {
            let (engine, vm) = vm_with_ram_swap(frames, 512);
            let space = AddressSpace::new(&vm);
            let mut t = TestswapTask::new(&space, 100 * 1024, 13);
            Scheduler::new(engine.clone(), 2).run_one(&mut t)
        };
        let in_mem = run(128);
        let paged = run(16);
        assert!(
            paged > in_mem,
            "paging run {paged} must exceed in-memory {in_mem}"
        );
    }
}
