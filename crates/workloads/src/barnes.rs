//! Barnes-Hut N-body simulation over paged memory (paper §6.1: "Barnes",
//! from the Stanford SPLASH-2 suite, simulating the interaction of
//! 2,097,152 bodies, peak memory ≈ 516 MB).
//!
//! A real Barnes-Hut implementation — octree build, centre-of-mass pass,
//! θ-opening force traversal, leapfrog integration — with every body and
//! tree-node datum living in [`PagedVec`]s, so the physics pages through
//! the simulated VM like the original did through Linux 2.4. Memory use
//! grows as the octree builds, reproducing the incremental footprint the
//! paper observes.
//!
//! Uses the blocking access path (Barnes only appears single-instance,
//! Figure 8); compute is charged through a meter that advances the virtual
//! clock in ~50 µs slices so background page-out overlaps the computation.

use netmodel::Calibration;
use simcore::{Engine, MultiResource, SimDuration, SimRng};
use std::cell::Cell;
use vmsim::{AddressSpace, PagedVec, Vm};

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct BarnesParams {
    /// Number of bodies (paper: 2,097,152; scale down proportionally).
    pub bodies: usize,
    /// Time steps to simulate.
    pub iterations: usize,
    /// Opening criterion θ (SPLASH-2 default region: ~1.0).
    pub theta: f64,
    /// Integration step.
    pub dt: f64,
    /// RNG seed for the initial distribution.
    pub seed: u64,
}

impl Default for BarnesParams {
    fn default() -> BarnesParams {
        BarnesParams {
            bodies: 16384,
            iterations: 2,
            theta: 1.0,
            dt: 0.025,
            seed: 17,
        }
    }
}

/// Outcome counters (for verification and reporting).
#[derive(Clone, Debug)]
pub struct BarnesResult {
    /// Total body-body + body-cell interactions computed.
    pub interactions: u64,
    /// Octree nodes built in the final iteration.
    pub tree_nodes: usize,
    /// Total kinetic energy after the final step (sanity check: finite).
    pub kinetic_energy: f64,
}

/// Virtual-clock compute meter: accumulates modeled nanoseconds and
/// advances the engine in slices, reserving the node CPU so kernel work
/// contends.
pub struct ComputeMeter {
    engine: Engine,
    cpu: MultiResource,
    pending: Cell<u64>,
    slice_ns: u64,
}

impl ComputeMeter {
    /// A meter flushing every ~50 µs of accumulated compute.
    pub fn new(engine: Engine, cpu: MultiResource) -> ComputeMeter {
        ComputeMeter {
            engine,
            cpu,
            pending: Cell::new(0),
            slice_ns: 50_000,
        }
    }

    /// Charge `ns` of compute; advances the clock when a slice accumulates.
    #[inline]
    pub fn charge(&self, ns: u64) {
        self.pending.set(self.pending.get() + ns);
        if self.pending.get() >= self.slice_ns {
            self.flush();
        }
    }

    /// Push all accumulated compute into the clock.
    pub fn flush(&self) {
        let ns = self.pending.take();
        if ns == 0 {
            return;
        }
        let dur = SimDuration::from_nanos(ns);
        self.cpu.reserve(self.engine.now(), dur);
        self.engine.advance(dur);
    }
}

/// Encoding of a tree child slot.
const EMPTY: i64 = 0;

#[inline]
fn enc_node(idx: usize) -> i64 {
    idx as i64 + 1
}

#[inline]
fn enc_body(idx: usize) -> i64 {
    -(idx as i64 + 1)
}

struct Tree {
    /// 8 child slots per node: 0 empty, +k internal node k-1, -b body b-1.
    child: PagedVec<i64>,
    /// Cell geometry: (cx, cy, cz, half) per node.
    geom: PagedVec<f64>,
    /// Centre of mass: (mx, my, mz, m) per node.
    com: PagedVec<f64>,
    /// Second moments (qxx, qyy, qzz, qxy, qxz, qyz) per node — the
    /// quadrupole state SPLASH-2 cells carry. Computed in the
    /// centre-of-mass pass; kept for footprint fidelity (the force pass
    /// uses the monopole term, documented in DESIGN.md).
    quad: PagedVec<f64>,
    nodes: usize,
    cap: usize,
}

impl Tree {
    fn new(space: &AddressSpace, cap: usize) -> Tree {
        Tree {
            child: PagedVec::new(space, cap * 8),
            geom: PagedVec::new(space, cap * 4),
            com: PagedVec::new(space, cap * 4),
            quad: PagedVec::new(space, cap * 6),
            nodes: 0,
            cap,
        }
    }

    fn alloc_node(&mut self, cx: f64, cy: f64, cz: f64, half: f64) -> usize {
        assert!(self.nodes < self.cap, "octree capacity exceeded");
        let idx = self.nodes;
        self.nodes += 1;
        for c in 0..8 {
            self.child.set(idx * 8 + c, EMPTY);
        }
        self.geom.set(idx * 4, cx);
        self.geom.set(idx * 4 + 1, cy);
        self.geom.set(idx * 4 + 2, cz);
        self.geom.set(idx * 4 + 3, half);
        idx
    }

    fn octant(cx: f64, cy: f64, cz: f64, x: f64, y: f64, z: f64) -> usize {
        (usize::from(x >= cx)) | (usize::from(y >= cy) << 1) | (usize::from(z >= cz) << 2)
    }

    fn child_center(&self, node: usize, oct: usize) -> (f64, f64, f64, f64) {
        let cx = self.geom.get(node * 4);
        let cy = self.geom.get(node * 4 + 1);
        let cz = self.geom.get(node * 4 + 2);
        let h = self.geom.get(node * 4 + 3) / 2.0;
        (
            cx + if oct & 1 != 0 { h } else { -h },
            cy + if oct & 2 != 0 { h } else { -h },
            cz + if oct & 4 != 0 { h } else { -h },
            h,
        )
    }
}

/// The Barnes-Hut application state.
pub struct Barnes {
    params: BarnesParams,
    vm: Vm,
    pos: PagedVec<f64>,
    vel: PagedVec<f64>,
    acc: PagedVec<f64>,
    mass: PagedVec<f64>,
    /// Gravitational potential per body (SPLASH-2 tracks it; also a
    /// physics sanity output).
    phi: PagedVec<f64>,
    /// Work counter per body (SPLASH-2 uses it for load balancing).
    cost: PagedVec<u64>,
    tree_space: AddressSpace,
    meter: ComputeMeter,
    interactions: u64,
    /// Per-step modeled costs (ns).
    cost_interaction: u64,
    cost_tree_level: u64,
    cost_body_update: u64,
}

impl Barnes {
    /// Initialise bodies uniformly in the unit cube with small random
    /// velocities.
    pub fn new(vm: &Vm, params: BarnesParams) -> Barnes {
        let cal: &Calibration = vm.calibration();
        let cost_interaction = cal.compute.barnes_ns_per_interaction;
        let body_space = AddressSpace::new(vm);
        let tree_space = AddressSpace::new(vm);
        let n = params.bodies;
        let meter = ComputeMeter::new(vm.engine().clone(), vm.node().cpu().clone());
        let mut rng = SimRng::new(params.seed);
        let pos = PagedVec::new(&body_space, 3 * n);
        let vel = PagedVec::new(&body_space, 3 * n);
        let acc = PagedVec::new(&body_space, 3 * n);
        let mass = PagedVec::new(&body_space, n);
        let phi = PagedVec::new(&body_space, n);
        let cost = PagedVec::new(&body_space, n);
        for b in 0..n {
            for d in 0..3 {
                pos.set(3 * b + d, rng.unit_f64());
                vel.set(3 * b + d, (rng.unit_f64() - 0.5) * 1e-3);
            }
            mass.set(b, 1.0 / n as f64);
            meter.charge(30);
        }
        Barnes {
            params,
            vm: vm.clone(),
            pos,
            vel,
            acc,
            mass,
            phi,
            cost,
            tree_space,
            meter,
            interactions: 0,
            cost_interaction,
            cost_tree_level: 20,
            cost_body_update: 15,
        }
    }

    /// Run the configured number of iterations; returns result counters.
    pub fn run(&mut self) -> BarnesResult {
        let mut tree_nodes = 0;
        for _ in 0..self.params.iterations {
            let tree = self.build_tree();
            tree_nodes = tree.nodes;
            self.compute_forces(&tree);
            self.integrate();
            // Tree storage is rebuilt next iteration; pages are reused via
            // the same address space allocations.
        }
        self.meter.flush();
        let ke = self.kinetic_energy();
        BarnesResult {
            interactions: self.interactions,
            tree_nodes,
            kinetic_energy: ke,
        }
    }

    /// Total potential energy (0.5 Σ m·φ) after the last force pass.
    pub fn potential_energy(&self) -> f64 {
        let n = self.params.bodies;
        let mut pe = 0.0;
        for b in 0..n {
            pe += 0.5 * self.mass.get(b) * self.phi.get(b);
        }
        pe
    }

    #[allow(clippy::needless_range_loop)] // indexing c[d] alongside per-dim scans is clearest
    fn bounding_box(&self) -> (f64, f64, f64, f64) {
        let n = self.params.bodies;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut c = [0.0f64; 3];
        for d in 0..3 {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for b in 0..n {
                let v = self.pos.get(3 * b + d);
                lo = lo.min(v);
                hi = hi.max(v);
                self.meter.charge(4);
            }
            c[d] = (lo + hi) / 2.0;
            min = min.min(lo);
            max = max.max(hi);
        }
        let half = ((max - min) / 2.0).max(1e-9) * 1.0001;
        (c[0], c[1], c[2], half)
    }

    fn build_tree(&mut self) -> Tree {
        let n = self.params.bodies;
        let cap = 2 * n + 64;
        let mut tree = Tree::new(&self.tree_space, cap);
        let (cx, cy, cz, half) = self.bounding_box();
        let root = tree.alloc_node(cx, cy, cz, half);
        for b in 0..n {
            let x = self.pos.get(3 * b);
            let y = self.pos.get(3 * b + 1);
            let z = self.pos.get(3 * b + 2);
            self.insert_body(&mut tree, root, b, x, y, z, 0);
        }
        // Centre-of-mass pass: children are created after their parents,
        // so a reverse sweep accumulates bottom-up.
        for node in (0..tree.nodes).rev() {
            let (mut mx, mut my, mut mz, mut m) = (0.0, 0.0, 0.0, 0.0);
            for c in 0..8 {
                let slot = tree.child.get(node * 8 + c);
                if slot == EMPTY {
                    continue;
                }
                if slot > 0 {
                    let k = (slot - 1) as usize;
                    // Child COM is stored normalized; re-weight by its mass.
                    let km = tree.com.get(k * 4 + 3);
                    mx += tree.com.get(k * 4) * km;
                    my += tree.com.get(k * 4 + 1) * km;
                    mz += tree.com.get(k * 4 + 2) * km;
                    m += km;
                } else {
                    let b = (-slot - 1) as usize;
                    let bm = self.mass.get(b);
                    mx += bm * self.pos.get(3 * b);
                    my += bm * self.pos.get(3 * b + 1);
                    mz += bm * self.pos.get(3 * b + 2);
                    m += bm;
                }
                self.meter.charge(self.cost_tree_level);
            }
            if m > 0.0 {
                tree.com.set(node * 4, mx / m);
                tree.com.set(node * 4 + 1, my / m);
                tree.com.set(node * 4 + 2, mz / m);
            }
            tree.com.set(node * 4 + 3, m);
            // Second moments about the cell centre (SPLASH-2's quadrupole
            // state; monopole-only force, documented simplification).
            let cx = tree.geom.get(node * 4);
            let cy = tree.geom.get(node * 4 + 1);
            let cz = tree.geom.get(node * 4 + 2);
            let dx = mx - m * cx;
            let dy = my - m * cy;
            let dz = mz - m * cz;
            tree.quad.set(node * 6, dx * dx);
            tree.quad.set(node * 6 + 1, dy * dy);
            tree.quad.set(node * 6 + 2, dz * dz);
            tree.quad.set(node * 6 + 3, dx * dy);
            tree.quad.set(node * 6 + 4, dx * dz);
            tree.quad.set(node * 6 + 5, dy * dz);
            self.meter.charge(self.cost_tree_level);
        }
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_body(
        &mut self,
        tree: &mut Tree,
        mut node: usize,
        body: usize,
        x: f64,
        y: f64,
        z: f64,
        mut depth: usize,
    ) {
        loop {
            self.meter.charge(self.cost_tree_level);
            let cx = tree.geom.get(node * 4);
            let cy = tree.geom.get(node * 4 + 1);
            let cz = tree.geom.get(node * 4 + 2);
            let oct = Tree::octant(cx, cy, cz, x, y, z);
            let slot_idx = node * 8 + oct;
            let slot = tree.child.get(slot_idx);
            if slot == EMPTY {
                tree.child.set(slot_idx, enc_body(body));
                return;
            }
            if slot > 0 {
                node = (slot - 1) as usize;
                depth += 1;
                continue;
            }
            // Occupied by a body: split the cell.
            let other = (-slot - 1) as usize;
            if depth > 60 {
                // Pathologically coincident positions: keep the newer body
                // in the same slot (mass conservation is negligible at
                // f64-random coincidence rates).
                tree.child.set(slot_idx, enc_body(body));
                return;
            }
            let (ncx, ncy, ncz, nh) = tree.child_center(node, oct);
            let fresh = tree.alloc_node(ncx, ncy, ncz, nh);
            tree.child.set(slot_idx, enc_node(fresh));
            // Re-insert the displaced body into the fresh cell, then loop
            // to place the current body.
            let ox = self.pos.get(3 * other);
            let oy = self.pos.get(3 * other + 1);
            let oz = self.pos.get(3 * other + 2);
            let ooct = Tree::octant(ncx, ncy, ncz, ox, oy, oz);
            tree.child.set(fresh * 8 + ooct, enc_body(other));
            node = fresh;
            depth += 1;
        }
    }

    fn compute_forces(&mut self, tree: &Tree) {
        let n = self.params.bodies;
        let theta2 = self.params.theta * self.params.theta;
        let eps2 = 1e-6;
        let mut stack: Vec<i64> = Vec::with_capacity(256);
        for b in 0..n {
            let x = self.pos.get(3 * b);
            let y = self.pos.get(3 * b + 1);
            let z = self.pos.get(3 * b + 2);
            let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
            let mut phi_acc = 0.0f64;
            let mut my_interactions = 0u64;
            stack.clear();
            stack.push(enc_node(0));
            while let Some(slot) = stack.pop() {
                if slot == EMPTY {
                    continue;
                }
                let (px, py, pz, m, open_children) = if slot > 0 {
                    let node = (slot - 1) as usize;
                    let m = tree.com.get(node * 4 + 3);
                    if m <= 0.0 {
                        continue;
                    }
                    let px = tree.com.get(node * 4);
                    let py = tree.com.get(node * 4 + 1);
                    let pz = tree.com.get(node * 4 + 2);
                    let size = tree.geom.get(node * 4 + 3) * 2.0;
                    let dx = px - x;
                    let dy = py - y;
                    let dz = pz - z;
                    let d2 = dx * dx + dy * dy + dz * dz + eps2;
                    if size * size > theta2 * d2 {
                        (0.0, 0.0, 0.0, 0.0, Some(node))
                    } else {
                        (px, py, pz, m, None)
                    }
                } else {
                    let other = (-slot - 1) as usize;
                    if other == b {
                        continue;
                    }
                    (
                        self.pos.get(3 * other),
                        self.pos.get(3 * other + 1),
                        self.pos.get(3 * other + 2),
                        self.mass.get(other),
                        None,
                    )
                };
                match open_children {
                    Some(node) => {
                        for c in 0..8 {
                            stack.push(tree.child.get(node * 8 + c));
                        }
                        self.meter.charge(self.cost_tree_level);
                    }
                    None => {
                        let dx = px - x;
                        let dy = py - y;
                        let dz = pz - z;
                        let d2 = dx * dx + dy * dy + dz * dz + eps2;
                        let inv = 1.0 / (d2 * d2.sqrt());
                        ax += m * dx * inv;
                        ay += m * dy * inv;
                        az += m * dz * inv;
                        phi_acc -= m / d2.sqrt();
                        my_interactions += 1;
                        self.interactions += 1;
                        self.meter.charge(self.cost_interaction);
                    }
                }
            }
            self.acc.set(3 * b, ax);
            self.acc.set(3 * b + 1, ay);
            self.acc.set(3 * b + 2, az);
            self.phi.set(b, phi_acc);
            self.cost.set(b, my_interactions);
        }
    }

    fn integrate(&mut self) {
        let n = self.params.bodies;
        let dt = self.params.dt;
        for b in 0..n {
            for d in 0..3 {
                let v = self.vel.get(3 * b + d) + self.acc.get(3 * b + d) * dt;
                self.vel.set(3 * b + d, v);
                self.pos.set(3 * b + d, self.pos.get(3 * b + d) + v * dt);
            }
            self.meter.charge(self.cost_body_update);
        }
    }

    fn kinetic_energy(&self) -> f64 {
        let n = self.params.bodies;
        let mut ke = 0.0;
        for b in 0..n {
            let vx = self.vel.get(3 * b);
            let vy = self.vel.get(3 * b + 1);
            let vz = self.vel.get(3 * b + 2);
            ke += 0.5 * self.mass.get(b) * (vx * vx + vy * vy + vz * vz);
        }
        ke
    }

    /// Interactions computed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The VM in use.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::{Calibration, Node};
    use simcore::Engine;
    use std::rc::Rc;
    use vmsim::VmConfig;

    fn vm_fixture(frames: usize, swap_pages: u64) -> (Engine, Vm) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend =
            vmsim::BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
        vm.add_swap_backend(backend, 0);
        (engine, vm)
    }

    #[test]
    fn runs_and_produces_finite_physics() {
        let (_engine, vm) = vm_fixture(4096, 1024);
        let mut barnes = Barnes::new(
            &vm,
            BarnesParams {
                bodies: 512,
                iterations: 2,
                ..BarnesParams::default()
            },
        );
        let result = barnes.run();
        assert!(result.interactions > 0);
        assert!(result.tree_nodes > 0);
        assert!(result.kinetic_energy.is_finite());
        assert!(result.kinetic_energy > 0.0);
    }

    #[test]
    fn interaction_count_scales_subquadratically() {
        // Barnes-Hut point: interactions per body grow ~log N, not N.
        let count = |n: usize| {
            let (_e, vm) = vm_fixture(8192, 1024);
            let mut barnes = Barnes::new(
                &vm,
                BarnesParams {
                    bodies: n,
                    iterations: 1,
                    ..BarnesParams::default()
                },
            );
            barnes.run().interactions
        };
        let small = count(256);
        let large = count(1024);
        let quadratic_ratio = 16.0; // (1024/256)^2
        let actual_ratio = large as f64 / small as f64;
        assert!(
            actual_ratio < quadratic_ratio * 0.7,
            "tree code should beat O(N^2): ratio {actual_ratio}"
        );
    }

    #[test]
    fn pages_under_pressure_and_still_finishes() {
        // Footprint of 2048 bodies (+tree) greatly exceeds 48 frames.
        let (_engine, vm) = vm_fixture(48, 4096);
        let mut barnes = Barnes::new(
            &vm,
            BarnesParams {
                bodies: 2048,
                iterations: 1,
                ..BarnesParams::default()
            },
        );
        let result = barnes.run();
        assert!(result.kinetic_energy.is_finite());
        assert!(vm.stats().swap_outs > 0, "must have paged");
    }

    #[test]
    fn virtual_time_advances_with_compute() {
        let (engine, vm) = vm_fixture(4096, 64);
        let mut barnes = Barnes::new(
            &vm,
            BarnesParams {
                bodies: 512,
                iterations: 1,
                ..BarnesParams::default()
            },
        );
        barnes.run();
        assert!(engine.now().as_nanos() > 100_000, "compute must cost time");
    }
}
