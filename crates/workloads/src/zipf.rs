//! Zipfian page-access workload (the figU "skewed client" variant).
//!
//! Real swap-heavy services rarely touch memory uniformly: a hot set of
//! pages absorbs most accesses while a long tail is touched rarely — the
//! access pattern Zipf's law describes. This workload samples *pages* from
//! a Zipf(s=1) distribution over the array, then reads or writes one
//! element inside the chosen page. Hot ranks are scattered across the
//! address range by a bijective hash, so popularity does **not** correlate
//! with adjacency: readahead gets no free lunch, and the demand-fault
//! stream alternates hot (in-core) and cold (swapped) pages — exactly the
//! regime where the user-space direct path's poll/event fallback policy is
//! interesting (figU).
//!
//! Written as a resumable [`Task`] like testswap/quicksort, so it runs
//! under the [`Scheduler`](crate::task::Scheduler) on both swap paths. A
//! blocked access is retried verbatim on resume (the sampled page index is
//! latched before the access), keeping the access sequence deterministic
//! for a given seed regardless of how often the task blocks.

use crate::task::{Step, Task};
use simcore::SimRng;
use vmsim::{AddressSpace, PagedVec};

/// u64 elements per 4 KiB page.
const WORDS_PER_PAGE: usize = 4096 / 8;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct ZipfParams {
    /// Array size in 4 KiB pages (rounded up to a power of two so rank →
    /// page scattering stays bijective).
    pub pages: usize,
    /// Accesses performed.
    pub operations: usize,
    /// Fraction of accesses that write, in percent (rest read).
    pub write_percent: u32,
    /// RNG seed.
    pub seed: u64,
    /// Modeled compute cost per access, ns.
    pub ns_per_op: u64,
}

impl Default for ZipfParams {
    fn default() -> ZipfParams {
        ZipfParams {
            pages: 1024,
            operations: 100_000,
            write_percent: 30,
            seed: 71,
            ns_per_op: 120,
        }
    }
}

/// A latched access: retried verbatim if the page must be swapped in.
#[derive(Clone, Copy)]
struct Access {
    index: usize,
    write: bool,
}

/// The Zipf-sampled array walker.
pub struct ZipfTask {
    data: PagedVec<u64>,
    /// Prefix sums of 1/rank (Zipf s=1) over pages; `cdf[i]` covers ranks
    /// `1..=i+1`. Binary-searched per access.
    cdf: Vec<f64>,
    pages: usize,
    params: ZipfParams,
    rng: SimRng,
    op: usize,
    current: Option<Access>,
    reads: u64,
    writes: u64,
    checksum: u64,
}

impl ZipfTask {
    /// Allocate the paged array in `space` and precompute the Zipf CDF.
    pub fn new(space: &AddressSpace, params: ZipfParams) -> ZipfTask {
        let pages = params.pages.next_power_of_two().max(2);
        let mut cdf = Vec::with_capacity(pages);
        let mut sum = 0.0f64;
        for rank in 1..=pages {
            sum += 1.0 / rank as f64;
            cdf.push(sum);
        }
        ZipfTask {
            data: PagedVec::new(space, pages * WORDS_PER_PAGE),
            cdf,
            pages,
            rng: SimRng::new(params.seed),
            params,
            op: 0,
            current: None,
            reads: 0,
            writes: 0,
            checksum: 0,
        }
    }

    /// Array footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.data.footprint_bytes()
    }

    /// Accesses completed so far.
    pub fn progress(&self) -> usize {
        self.op
    }

    /// Reads and writes completed.
    pub fn counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// XOR-fold of every value read — a cheap witness that data survived
    /// the paging round trips (two equal-seed runs must agree).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Sample a page rank from the Zipf CDF, then scatter it across the
    /// address range so hot pages are not neighbors.
    fn sample(&mut self) -> Access {
        let total = *self.cdf.last().expect("cdf is never empty");
        // 53-bit uniform in [0, total).
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
        let rank = self.cdf.partition_point(|&c| c <= u);
        // Bijective scatter: odd multiplier on a power-of-two modulus.
        let page = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) & (self.pages - 1);
        let word = self.rng.below(WORDS_PER_PAGE as u64) as usize;
        let write = self.rng.below(100) < self.params.write_percent as u64;
        Access {
            index: page * WORDS_PER_PAGE + word,
            write,
        }
    }
}

impl Task for ZipfTask {
    fn step(&mut self, max_ops: u64) -> Step {
        let mut budget = max_ops;
        while budget > 0 {
            if self.op == self.params.operations {
                return Step::Done;
            }
            let access = match self.current {
                Some(a) => a,
                None => {
                    let a = self.sample();
                    self.current = Some(a);
                    a
                }
            };
            if access.write {
                let stamp = (self.op as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                crate::try_access!(self.data.try_set(access.index, stamp));
                self.writes += 1;
            } else {
                let v = crate::try_access!(self.data.try_get(access.index));
                self.checksum ^= v.rotate_left((self.op % 63) as u32);
                self.reads += 1;
            }
            self.current = None;
            self.op += 1;
            budget -= 1;
        }
        Step::Ran
    }

    fn ns_per_op(&self) -> u64 {
        self.params.ns_per_op
    }

    fn name(&self) -> &str {
        "zipf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Scheduler;
    use netmodel::{Calibration, Node};
    use simcore::Engine;
    use std::rc::Rc;
    use vmsim::{Vm, VmConfig};

    fn vm_with_ram_swap(frames: usize, swap_pages: u64) -> (Engine, Vm) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend =
            vmsim::BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
        vm.add_swap_backend(backend, 0);
        (engine, vm)
    }

    fn run(params: ZipfParams, frames: usize, swap_pages: u64) -> (Vm, ZipfTask) {
        let (engine, vm) = vm_with_ram_swap(frames, swap_pages);
        let space = AddressSpace::new(&vm);
        let mut task = ZipfTask::new(&space, params);
        Scheduler::new(engine, 2).run_one(&mut task);
        (vm, task)
    }

    #[test]
    fn completes_and_counts_every_operation() {
        let params = ZipfParams {
            pages: 64,
            operations: 5_000,
            ..ZipfParams::default()
        };
        let (_vm, task) = run(params.clone(), 256, 256);
        assert_eq!(task.progress(), params.operations);
        let (reads, writes) = task.counts();
        assert_eq!(reads + writes, params.operations as u64);
        assert!(reads > 0 && writes > 0);
    }

    #[test]
    fn equal_seeds_agree_under_different_pressure() {
        // Checksum is a function of the access sequence, not of paging:
        // a memory-rich run and a thrashing run must read the same values.
        let params = ZipfParams {
            pages: 128,
            operations: 8_000,
            ..ZipfParams::default()
        };
        let (rich_vm, rich) = run(params.clone(), 1024, 512);
        let (poor_vm, poor) = run(params, 48, 512);
        assert_eq!(rich_vm.stats().swap_outs, 0, "rich run must fit in RAM");
        assert!(poor_vm.stats().swap_outs > 0, "poor run must page");
        assert_eq!(rich.checksum(), poor.checksum(), "data diverged via swap");
    }

    #[test]
    fn access_skew_concentrates_on_a_hot_set() {
        // With s=1 over P pages, the top 10% of ranks should absorb well
        // over a third of the mass; verify via fault counts: the skewed
        // walker faults far less than uniform page count alone suggests.
        let params = ZipfParams {
            pages: 256,
            operations: 10_000,
            write_percent: 0,
            ..ZipfParams::default()
        };
        let (vm, task) = run(params, 64, 512);
        let faults = vm.stats().major_faults;
        assert!(task.progress() == 10_000);
        // A uniform walker over 256 pages with 64 frames misses ~75% of
        // accesses (~7500 faults). Zipf(s=1) concentrates ~77% of mass on
        // the top 64 ranks, so even with readahead pollution evicting hot
        // pages the miss rate must land clearly below uniform.
        assert!(
            faults < 6_500,
            "zipf should hit its hot set: {faults} faults in 10k accesses"
        );
    }
}
