//! Resumable tasks and the quantum scheduler.
//!
//! Applications are state machines whose [`Task::step`] performs up to a
//! budget of operations against paged memory and stops early when an
//! access would block (returning the fault's completion signal). The
//! [`Scheduler`] round-robins runnable tasks in fixed virtual-time quanta:
//! each quantum, every runnable task executes `quantum / ns_per_op`
//! operations *in parallel* (one CPU each, as on the paper's dual-Xeon
//! nodes), the clock advances by one quantum — draining background
//! page-out I/O — and blocked tasks wake when their signals fire.
//!
//! The quantum (default 50 µs) bounds the timing error of compute/IO
//! interleaving; it is far below the millisecond-scale phenomena the
//! figures measure.

use simcore::{Engine, MultiResource, Signal, SimDuration, SimTime};
use std::rc::Rc;

/// Outcome of one scheduling step.
pub enum Step {
    /// Consumed the whole budget (more work remains).
    Ran,
    /// Stopped early: the next access waits on this signal.
    Blocked(Signal),
    /// The task is complete.
    Done,
}

/// A resumable application instance.
pub trait Task {
    /// Execute up to `max_ops` operations. Must be safe to call again after
    /// a `Blocked` return (accesses are idempotent at the blocking point).
    fn step(&mut self, max_ops: u64) -> Step;

    /// Modeled cost of one operation in virtual nanoseconds.
    fn ns_per_op(&self) -> u64;

    /// Name for reports.
    fn name(&self) -> &str;
}

enum TaskState {
    Runnable,
    Blocked(Signal),
    Done(SimTime),
}

/// Round-robin quantum scheduler over one engine.
pub struct Scheduler {
    engine: Engine,
    quantum: SimDuration,
    cpus: usize,
    node_cpu: Option<MultiResource>,
}

impl Scheduler {
    /// A scheduler with the default 50 µs quantum on a machine with `cpus`
    /// application CPUs.
    pub fn new(engine: Engine, cpus: usize) -> Scheduler {
        Scheduler {
            engine,
            quantum: SimDuration::from_micros(50),
            cpus,
            node_cpu: None,
        }
    }

    /// Override the quantum (timing-granularity ablation).
    pub fn with_quantum(mut self, quantum: SimDuration) -> Scheduler {
        assert!(!quantum.is_zero());
        self.quantum = quantum;
        self
    }

    /// Charge application compute against this node CPU pool, so kernel
    /// work (kswapd copies, driver staging) contends with the applications
    /// for cores — the host-overhead effect the paper measures.
    pub fn with_node_cpu(mut self, cpu: MultiResource) -> Scheduler {
        self.node_cpu = Some(cpu);
        self
    }

    /// Run all tasks to completion; returns each task's completion instant
    /// (same order as `tasks`).
    ///
    /// # Panics
    /// Panics on simulation deadlock (all tasks blocked, no events
    /// pending).
    pub fn run(&self, tasks: &mut [&mut dyn Task]) -> Vec<SimTime> {
        assert!(!tasks.is_empty());
        let mut states: Vec<TaskState> = tasks.iter().map(|_| TaskState::Runnable).collect();
        let mut runnable: Vec<usize> = Vec::with_capacity(states.len());
        loop {
            // Wake tasks whose fault completed.
            for st in states.iter_mut() {
                if let TaskState::Blocked(sig) = st {
                    if sig.is_set() {
                        *st = TaskState::Runnable;
                    }
                }
            }
            runnable.clear();
            runnable.extend(
                states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, TaskState::Runnable))
                    .map(|(i, _)| i),
            );

            if runnable.is_empty() {
                let waits: Vec<Signal> = states
                    .iter()
                    .filter_map(|s| match s {
                        TaskState::Blocked(sig) => Some(sig.clone()),
                        _ => None,
                    })
                    .collect();
                if waits.is_empty() {
                    // Everything done.
                    return states
                        .iter()
                        .map(|s| match s {
                            TaskState::Done(t) => *t,
                            _ => unreachable!("no runnable, no blocked, not done"),
                        })
                        .collect();
                }
                self.engine.run_until_any(&waits);
                continue;
            }

            // Each runnable task gets a quantum; more tasks than CPUs time-
            // share (wall time stretches accordingly).
            let waves = runnable.len().div_ceil(self.cpus) as u64;
            for &i in &runnable {
                let ops = (self.quantum.as_nanos() / tasks[i].ns_per_op()).max(1);
                match tasks[i].step(ops) {
                    Step::Ran => {}
                    Step::Blocked(sig) => states[i] = TaskState::Blocked(sig),
                    Step::Done => states[i] = TaskState::Done(self.engine.now() + self.quantum),
                }
            }
            // Occupy the node CPUs for the quantum so background kernel
            // work (kswapd memcpy, driver copies) contends realistically.
            if let Some(cpu) = &self.node_cpu {
                let now = self.engine.now();
                for _ in 0..runnable.len() {
                    cpu.reserve(now, self.quantum);
                }
            }
            self.engine.advance(self.quantum * waves);
        }
    }

    /// Convenience for a single task: run it, return its completion time.
    pub fn run_one(&self, task: &mut dyn Task) -> SimTime {
        let mut tasks: [&mut dyn Task; 1] = [task];
        self.run(&mut tasks)[0]
    }
}

/// Helper shared by task implementations: run the closure-expressed access,
/// mapping a would-block signal into `Step::Blocked` at the call site.
#[macro_export]
macro_rules! try_access {
    ($expr:expr) => {
        match $expr {
            Ok(v) => v,
            Err(sig) => return $crate::task::Step::Blocked(sig),
        }
    };
}

/// Make `Rc<dyn Fn>`-style completion checking easy in tests.
pub type SharedFlag = Rc<std::cell::Cell<bool>>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts to `target` in increments bounded by the budget.
    struct Counter {
        count: u64,
        target: u64,
    }

    impl Task for Counter {
        fn step(&mut self, max_ops: u64) -> Step {
            let n = max_ops.min(self.target - self.count);
            self.count += n;
            if self.count == self.target {
                Step::Done
            } else {
                Step::Ran
            }
        }
        fn ns_per_op(&self) -> u64 {
            10
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn single_task_time_matches_op_cost() {
        let engine = Engine::new();
        let sched = Scheduler::new(engine.clone(), 2);
        let mut t = Counter {
            count: 0,
            target: 1_000_000,
        };
        let done = sched.run_one(&mut t);
        // 1M ops at 10ns = 10ms, within one quantum of slack.
        let expect = 10_000_000u64;
        assert!(
            done.as_nanos().abs_diff(expect) <= 100_000,
            "got {done}, expected ~10ms"
        );
    }

    #[test]
    fn two_tasks_on_two_cpus_run_in_parallel() {
        let engine = Engine::new();
        let sched = Scheduler::new(engine.clone(), 2);
        let mut a = Counter {
            count: 0,
            target: 1_000_000,
        };
        let mut b = Counter {
            count: 0,
            target: 1_000_000,
        };
        let mut tasks: [&mut dyn Task; 2] = [&mut a, &mut b];
        let done = sched.run(&mut tasks);
        // Both finish around 10ms — not 20ms (they have a CPU each).
        for d in done {
            assert!(
                d.as_nanos() < 12_000_000,
                "parallel tasks should not serialize: {d}"
            );
        }
    }

    #[test]
    fn more_tasks_than_cpus_time_share() {
        let engine = Engine::new();
        let sched = Scheduler::new(engine.clone(), 1);
        let mut a = Counter {
            count: 0,
            target: 500_000,
        };
        let mut b = Counter {
            count: 0,
            target: 500_000,
        };
        let mut tasks: [&mut dyn Task; 2] = [&mut a, &mut b];
        let done = sched.run(&mut tasks);
        // One CPU, two 5ms tasks: ~10ms wall.
        assert!(
            done.iter().any(|d| d.as_nanos() >= 9_000_000),
            "time-sharing should stretch wall time: {done:?}"
        );
    }

    /// Blocks once at the midpoint until an event fires.
    struct BlockOnce {
        count: u64,
        target: u64,
        engine: Engine,
        blocked: Option<Signal>,
    }

    impl Task for BlockOnce {
        fn step(&mut self, max_ops: u64) -> Step {
            if self.count == self.target / 2 && self.blocked.is_none() {
                let sig = Signal::new("io");
                self.blocked = Some(sig.clone());
                // Completion arrives 1ms later.
                let s2 = sig.clone();
                self.engine
                    .schedule_in(SimDuration::from_millis(1), move || s2.set());
                return Step::Blocked(sig);
            }
            let n = max_ops.min(self.target - self.count);
            self.count += n;
            if self.count == self.target {
                Step::Done
            } else {
                Step::Ran
            }
        }
        fn ns_per_op(&self) -> u64 {
            10
        }
        fn name(&self) -> &str {
            "block-once"
        }
    }

    #[test]
    fn blocked_task_waits_for_signal() {
        let engine = Engine::new();
        let sched = Scheduler::new(engine.clone(), 2);
        let mut t = BlockOnce {
            count: 0,
            target: 100_000,
            engine: engine.clone(),
            blocked: None,
        };
        let done = sched.run_one(&mut t);
        // 1ms compute + 1ms block ≈ 2ms.
        assert!(
            done.as_nanos() >= 2_000_000,
            "block time must show up: {done}"
        );
        assert!(done.as_nanos() < 2_300_000, "but not much more: {done}");
    }

    #[test]
    fn node_cpu_reservation_creates_contention() {
        use simcore::MultiResource;
        // With a node CPU attached, two running tasks book both cores each
        // quantum, so kernel work (here: a probe reservation) queues.
        let engine = Engine::new();
        let cpu = MultiResource::new("node-cpu", 2);
        let sched = Scheduler::new(engine.clone(), 2).with_node_cpu(cpu.clone());
        let mut a = Counter {
            count: 0,
            target: 200_000,
        };
        let mut b = Counter {
            count: 0,
            target: 200_000,
        };
        let mut tasks: [&mut dyn Task; 2] = [&mut a, &mut b];
        sched.run(&mut tasks);
        // ~2ms of compute per task booked on the pool.
        let busy = cpu.busy_total().as_nanos();
        assert!(
            busy >= 2 * 2_000_000,
            "both tasks' quanta must be booked: {busy}ns"
        );
    }

    #[test]
    fn other_task_progresses_while_one_blocks() {
        let engine = Engine::new();
        let sched = Scheduler::new(engine.clone(), 2);
        let mut a = BlockOnce {
            count: 0,
            target: 100_000, // 1ms compute + 1ms block
            engine: engine.clone(),
            blocked: None,
        };
        let mut b = Counter {
            count: 0,
            target: 150_000, // 1.5ms compute
        };
        let mut tasks: [&mut dyn Task; 2] = [&mut a, &mut b];
        let done = sched.run(&mut tasks);
        // b must finish before a despite starting together: it computes
        // through a's I/O stall.
        assert!(
            done[1] < done[0],
            "b {:?} should beat a {:?}",
            done[1],
            done[0]
        );
    }
}
