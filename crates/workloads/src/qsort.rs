//! Quicksort over paged memory (paper §6.1: "an implementation of a
//! quick-sort algorithm \[CLRS\], which sorts 256M randomly generated
//! integers, whose data set is around 1 GB on our IA-32 platform").
//!
//! The task is a fully resumable state machine: every element access can
//! report "would block" (a page fault in flight), and re-entry retries the
//! same access — the micro-state carried in `Phase` caches already-read
//! values so re-execution is idempotent. This is what lets two quicksort
//! instances interleave over one VM for Figure 9.
//!
//! Algorithm: iterative Lomuto-partition quicksort with an insertion-sort
//! cutoff, the textbook CLRS structure the paper cites.

use crate::task::{Step, Task};
use simcore::SimRng;
use vmsim::{AddressSpace, PagedVec};

/// Ranges at or below this length use insertion sort.
const INSERTION_CUTOFF: u64 = 16;

/// Micro-state of the quicksort state machine. Indices are element
/// positions; `Option` fields cache values across a blocking retry.
enum Phase {
    /// Writing random input data.
    Fill,
    /// Pop the next range off the stack.
    Next,
    /// Load the pivot `a[hi]`.
    PivotLoad { lo: u64, hi: u64 },
    /// Lomuto scan: `i` is the store index, `j` the scan index.
    Scan {
        lo: u64,
        hi: u64,
        pivot: i32,
        i: u64,
        j: u64,
        vj: Option<i32>,
        vi: Option<i32>,
        wrote_i: bool,
    },
    /// Swap the pivot into place at `i`, then push subranges.
    FinalSwap {
        lo: u64,
        hi: u64,
        i: u64,
        vi: Option<i32>,
        vhi: Option<i32>,
        wrote_i: bool,
    },
    /// Insertion sort outer loop at element `i`.
    InsOuter { lo: u64, hi: u64, i: u64 },
    /// Insertion sort inner loop: sift `key` down to position `j`.
    InsInner {
        lo: u64,
        hi: u64,
        i: u64,
        j: u64,
        key: i32,
    },
    /// Sorting complete.
    Finished,
}

/// A resumable quicksort instance.
pub struct QsortTask {
    data: PagedVec<i32>,
    stack: Vec<(u64, u64)>,
    phase: Phase,
    fill_next: usize,
    fill_val: Option<i32>,
    rng: SimRng,
    ns_per_op: u64,
    name: String,
}

impl QsortTask {
    /// Allocate and later sort `elements` random i32s.
    pub fn new(
        space: &AddressSpace,
        elements: usize,
        seed: u64,
        ns_per_op: u64,
        name: impl Into<String>,
    ) -> QsortTask {
        QsortTask {
            data: PagedVec::new(space, elements),
            stack: Vec::new(),
            phase: Phase::Fill,
            fill_next: 0,
            fill_val: None,
            rng: SimRng::new(seed),
            ns_per_op,
            name: name.into(),
        }
    }

    /// The array (for verification).
    pub fn data(&self) -> &PagedVec<i32> {
        &self.data
    }

    /// Blocking full-array sortedness check (verification outside the
    /// measured run).
    pub fn is_sorted(&self) -> bool {
        let n = self.data.len();
        if n < 2 {
            return true;
        }
        let mut prev = self.data.get(0);
        for i in 1..n {
            let v = self.data.get(i);
            if v < prev {
                return false;
            }
            prev = v;
        }
        true
    }

    /// One micro-transition. Returns ops consumed, or the blocking signal.
    fn advance_one(&mut self) -> Result<u64, simcore::Signal> {
        let n = self.data.len() as u64;
        match &mut self.phase {
            Phase::Fill => {
                if self.fill_next as u64 == n {
                    self.phase = if n >= 2 {
                        self.stack.push((0, n - 1));
                        Phase::Next
                    } else {
                        Phase::Finished
                    };
                    return Ok(0);
                }
                let val = *self
                    .fill_val
                    .get_or_insert_with(|| self.rng.next_u32() as i32);
                self.data.try_set(self.fill_next, val)?;
                self.fill_next += 1;
                self.fill_val = None;
                Ok(1)
            }
            Phase::Next => match self.stack.pop() {
                None => {
                    self.phase = Phase::Finished;
                    Ok(0)
                }
                Some((lo, hi)) => {
                    self.phase = if hi - lo < INSERTION_CUTOFF {
                        Phase::InsOuter { lo, hi, i: lo + 1 }
                    } else {
                        Phase::PivotLoad { lo, hi }
                    };
                    Ok(0)
                }
            },
            Phase::PivotLoad { lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                let pivot = self.data.try_get(hi as usize)?;
                self.phase = Phase::Scan {
                    lo,
                    hi,
                    pivot,
                    i: lo,
                    j: lo,
                    vj: None,
                    vi: None,
                    wrote_i: false,
                };
                Ok(1)
            }
            Phase::Scan {
                lo,
                hi,
                pivot,
                i,
                j,
                vj,
                vi,
                wrote_i,
            } => {
                let (lo, hi, pivot) = (*lo, *hi, *pivot);
                if *j == hi {
                    let i = *i;
                    self.phase = Phase::FinalSwap {
                        lo,
                        hi,
                        i,
                        vi: None,
                        vhi: None,
                        wrote_i: false,
                    };
                    return Ok(0);
                }
                // Read a[j].
                let cur_vj = match *vj {
                    Some(v) => v,
                    None => {
                        let v = self.data.try_get(*j as usize)?;
                        *vj = Some(v);
                        return Ok(1);
                    }
                };
                if cur_vj > pivot {
                    *j += 1;
                    *vj = None;
                    return Ok(0);
                }
                if *i == *j {
                    *i += 1;
                    *j += 1;
                    *vj = None;
                    return Ok(0);
                }
                // Swap a[i] <-> a[j], one access per transition.
                let cur_vi = match *vi {
                    Some(v) => v,
                    None => {
                        let v = self.data.try_get(*i as usize)?;
                        *vi = Some(v);
                        return Ok(1);
                    }
                };
                if !*wrote_i {
                    self.data.try_set(*i as usize, cur_vj)?;
                    *wrote_i = true;
                    return Ok(1);
                }
                self.data.try_set(*j as usize, cur_vi)?;
                *i += 1;
                *j += 1;
                *vj = None;
                *vi = None;
                *wrote_i = false;
                Ok(1)
            }
            Phase::FinalSwap {
                lo,
                hi,
                i,
                vi,
                vhi,
                wrote_i,
            } => {
                let (lo, hi, i) = (*lo, *hi, *i);
                if i != hi {
                    let cur_vhi = match *vhi {
                        Some(v) => v,
                        None => {
                            let v = self.data.try_get(hi as usize)?;
                            *vhi = Some(v);
                            return Ok(1);
                        }
                    };
                    let cur_vi = match *vi {
                        Some(v) => v,
                        None => {
                            let v = self.data.try_get(i as usize)?;
                            *vi = Some(v);
                            return Ok(1);
                        }
                    };
                    if !*wrote_i {
                        self.data.try_set(i as usize, cur_vhi)?;
                        *wrote_i = true;
                        return Ok(1);
                    }
                    self.data.try_set(hi as usize, cur_vi)?;
                }
                // Pivot in place at i. Push larger side first so the
                // smaller is processed next (bounded stack depth).
                let left = (i > lo).then(|| (lo, i - 1));
                let right = (i < hi).then(|| (i + 1, hi));
                match (left, right) {
                    (Some(l), Some(r)) => {
                        if l.1 - l.0 > r.1 - r.0 {
                            self.stack.push(l);
                            self.stack.push(r);
                        } else {
                            self.stack.push(r);
                            self.stack.push(l);
                        }
                    }
                    (Some(l), None) => self.stack.push(l),
                    (None, Some(r)) => self.stack.push(r),
                    (None, None) => {}
                }
                self.phase = Phase::Next;
                Ok(1)
            }
            Phase::InsOuter { lo, hi, i } => {
                let (lo, hi, i) = (*lo, *hi, *i);
                if i > hi {
                    self.phase = Phase::Next;
                    return Ok(0);
                }
                let key = self.data.try_get(i as usize)?;
                self.phase = Phase::InsInner {
                    lo,
                    hi,
                    i,
                    j: i,
                    key,
                };
                Ok(1)
            }
            Phase::InsInner { lo, hi, i, j, key } => {
                let (lo, hi, i, key) = (*lo, *hi, *i, *key);
                if *j > lo {
                    let prev = self.data.try_get(*j as usize - 1)?;
                    if prev > key {
                        self.data.try_set(*j as usize, prev)?;
                        *j -= 1;
                        return Ok(2);
                    }
                }
                self.data.try_set(*j as usize, key)?;
                self.phase = Phase::InsOuter { lo, hi, i: i + 1 };
                Ok(2)
            }
            Phase::Finished => Ok(0),
        }
    }
}

impl Task for QsortTask {
    fn step(&mut self, max_ops: u64) -> Step {
        let mut budget = max_ops as i64;
        while budget > 0 {
            if matches!(self.phase, Phase::Finished) {
                return Step::Done;
            }
            match self.advance_one() {
                Ok(ops) => budget -= ops as i64,
                Err(sig) => return Step::Blocked(sig),
            }
            // Zero-op transitions (stack pops) still make progress; the
            // budget only counts memory operations, matching the paper's
            // compute model.
        }
        if matches!(self.phase, Phase::Finished) {
            Step::Done
        } else {
            Step::Ran
        }
    }

    fn ns_per_op(&self) -> u64 {
        self.ns_per_op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Scheduler;
    use netmodel::{Calibration, Node};
    use simcore::Engine;
    use std::rc::Rc;
    use vmsim::{Vm, VmConfig};

    fn vm_with_ram_swap(frames: usize, swap_pages: u64) -> (Engine, Vm) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend =
            vmsim::BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
        vm.add_swap_backend(backend, 0);
        (engine, vm)
    }

    #[test]
    fn sorts_in_memory() {
        let (engine, vm) = vm_with_ram_swap(256, 64);
        let space = AddressSpace::new(&vm);
        let mut t = QsortTask::new(&space, 50_000, 42, 11, "qsort");
        Scheduler::new(engine.clone(), 2).run_one(&mut t);
        assert!(t.is_sorted(), "output must be sorted");
        assert_eq!(vm.stats().major_faults, 0, "fits in memory");
    }

    #[test]
    fn sorts_tiny_and_degenerate_inputs() {
        let (engine, vm) = vm_with_ram_swap(64, 16);
        let space = AddressSpace::new(&vm);
        for n in [0usize, 1, 2, 3, 15, 16, 17, 100] {
            let mut t = QsortTask::new(&space, n, n as u64, 11, "tiny");
            Scheduler::new(engine.clone(), 2).run_one(&mut t);
            assert!(t.is_sorted(), "n={n}");
        }
    }

    #[test]
    fn sorts_under_memory_pressure() {
        // Array is 4x local memory: the sort has to page constantly and
        // must still be correct.
        let (engine, vm) = vm_with_ram_swap(32, 512);
        let space = AddressSpace::new(&vm);
        let mut t = QsortTask::new(&space, 128 * 1024, 7, 11, "qsort");
        Scheduler::new(engine.clone(), 2).run_one(&mut t);
        assert!(vm.stats().swap_outs > 0, "must have paged");
        assert!(t.is_sorted(), "paging must not corrupt the sort");
    }

    #[test]
    fn paging_run_is_slower() {
        let run = |frames| {
            let (engine, vm) = vm_with_ram_swap(frames, 512);
            let space = AddressSpace::new(&vm);
            let mut t = QsortTask::new(&space, 64 * 1024, 3, 11, "qsort");
            Scheduler::new(engine.clone(), 2).run_one(&mut t)
        };
        let fast = run(256);
        let slow = run(16);
        assert!(slow > fast, "pressure {slow} vs in-memory {fast}");
    }

    #[test]
    fn two_instances_interleave_and_both_sort() {
        let (engine, vm) = vm_with_ram_swap(48, 1024);
        let s1 = AddressSpace::new(&vm);
        let s2 = AddressSpace::new(&vm);
        let mut a = QsortTask::new(&s1, 64 * 1024, 1, 11, "qsort-a");
        let mut b = QsortTask::new(&s2, 64 * 1024, 2, 11, "qsort-b");
        let mut tasks: [&mut dyn Task; 2] = [&mut a, &mut b];
        Scheduler::new(engine.clone(), 2).run(&mut tasks);
        assert!(a.is_sorted(), "instance A sorted");
        assert!(b.is_sorted(), "instance B sorted");
    }
}
