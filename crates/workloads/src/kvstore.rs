//! A database-like key-value workload over paged memory.
//!
//! The paper's introduction motivates remote paging with exactly this
//! shape: "modern databases typically maintain millions of records.
//! Keeping the working set in memory for database transactions demands a
//! high volume of memory space" (§1). This workload builds an
//! open-addressing hash table (linear probing) in paged memory — keys and
//! 32-byte values — loads it with records, then runs a read-mostly
//! transaction mix with optionally skewed key popularity. Unlike testswap
//! and quicksort, its fault pattern is *random single pages*, the
//! worst case for readahead and for the disk, which is what makes it an
//! interesting extra point beyond the paper's three programs.
//!
//! Uses the blocking access path plus a [`ComputeMeter`] (single-instance
//! scenarios), like Barnes-Hut.

use crate::barnes::ComputeMeter;
use simcore::SimRng;
use vmsim::{AddressSpace, PagedVec, Vm};

/// Value payload words per record (4 × u64 = 32 bytes).
const VALUE_WORDS: usize = 4;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct KvParams {
    /// Records loaded into the table.
    pub records: usize,
    /// Transactions executed after loading (reads + updates).
    pub operations: usize,
    /// Fraction of operations that are reads, in percent (rest update).
    pub read_percent: u32,
    /// Skew the key popularity quadratically toward a hot set (a crude
    /// Zipf stand-in) instead of uniform.
    pub skewed: bool,
    /// RNG seed.
    pub seed: u64,
    /// Modeled compute cost per table probe, ns.
    pub ns_per_probe: u64,
}

impl Default for KvParams {
    fn default() -> KvParams {
        KvParams {
            records: 100_000,
            operations: 200_000,
            read_percent: 80,
            skewed: false,
            seed: 23,
            ns_per_probe: 60,
        }
    }
}

/// Outcome counters.
#[derive(Clone, Debug)]
pub struct KvResult {
    /// Reads that found their key (must equal the reads issued).
    pub hits: u64,
    /// Updates applied.
    pub updates: u64,
    /// Total probe steps (table pressure measure).
    pub probes: u64,
    /// Verified sample size (values checked against a shadow model).
    pub verified: u64,
}

/// The paged hash table plus its driver.
pub struct KvStore {
    keys: PagedVec<u64>,
    values: PagedVec<u64>,
    capacity: usize,
    meter: ComputeMeter,
    params: KvParams,
    probes: u64,
}

impl KvStore {
    /// Create a table sized at 2× the record count (50 % load factor) in
    /// its own address space on `vm`.
    pub fn new(vm: &Vm, params: KvParams) -> KvStore {
        let capacity = (2 * params.records).next_power_of_two();
        let space = AddressSpace::new(vm);
        KvStore {
            keys: PagedVec::new(&space, capacity),
            values: PagedVec::new(&space, capacity * VALUE_WORDS),
            capacity,
            meter: ComputeMeter::new(vm.engine().clone(), vm.node().cpu().clone()),
            params,
            probes: 0,
        }
    }

    /// Table footprint in bytes (keys + values).
    pub fn footprint_bytes(&self) -> u64 {
        self.keys.footprint_bytes() + self.values.footprint_bytes()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads sequential keys.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.capacity - 1)
    }

    /// Insert or update `key` with a value derived from `stamp`.
    pub fn put(&mut self, key: u64, stamp: u64) {
        assert!(key != 0, "key 0 is the empty marker");
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            self.meter.charge(self.params.ns_per_probe);
            let k = self.keys.get(slot);
            if k == 0 || k == key {
                self.keys.set(slot, key);
                for w in 0..VALUE_WORDS {
                    self.values
                        .set(slot * VALUE_WORDS + w, stamp.wrapping_add(w as u64));
                }
                return;
            }
            slot = (slot + 1) & (self.capacity - 1);
        }
    }

    /// Look up `key`; returns the first value word if present.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            self.meter.charge(self.params.ns_per_probe);
            let k = self.keys.get(slot);
            if k == key {
                // Touch the whole value, as a record read would.
                let mut first = 0;
                for w in 0..VALUE_WORDS {
                    let v = self.values.get(slot * VALUE_WORDS + w);
                    if w == 0 {
                        first = v;
                    }
                }
                return Some(first);
            }
            if k == 0 {
                return None;
            }
            slot = (slot + 1) & (self.capacity - 1);
        }
    }

    /// Load the table, run the transaction mix, verify a sample against a
    /// shadow model. Panics on any divergence (data integrity through the
    /// paging path is the point).
    pub fn run(&mut self) -> KvResult {
        let params = self.params.clone();
        let mut rng = SimRng::new(params.seed);
        // Keys are 1..=records (dense, nonzero).
        for key in 1..=params.records as u64 {
            self.put(key, key.wrapping_mul(31));
        }
        // Shadow model: latest stamp per key; sampled verification.
        let mut shadow: Vec<u64> = (0..=params.records as u64)
            .map(|k| k.wrapping_mul(31))
            .collect();

        let mut hits = 0u64;
        let mut updates = 0u64;
        let mut verified = 0u64;
        for op in 0..params.operations {
            let r = rng.below(params.records as u64);
            let key = 1 + if params.skewed {
                // Quadratic skew toward low keys.
                (r * r) / params.records as u64
            } else {
                r
            };
            if rng.below(100) < params.read_percent as u64 {
                let got = self.get(key).expect("loaded key must be present");
                hits += 1;
                if op % 64 == 0 {
                    assert_eq!(got, shadow[key as usize], "value diverged for key {key}");
                    verified += 1;
                }
            } else {
                let stamp = (op as u64).wrapping_mul(0xABCD_1234);
                self.put(key, stamp);
                shadow[key as usize] = stamp;
                updates += 1;
            }
        }
        self.meter.flush();
        KvResult {
            hits,
            updates,
            probes: self.probes,
            verified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::{Calibration, Node};
    use simcore::Engine;
    use std::rc::Rc;
    use vmsim::VmConfig;

    fn vm_fixture(frames: usize, swap_pages: u64) -> (Engine, Vm) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend =
            vmsim::BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
        vm.add_swap_backend(backend, 0);
        (engine, vm)
    }

    #[test]
    fn put_get_roundtrip_in_memory() {
        let (_e, vm) = vm_fixture(2048, 256);
        let mut kv = KvStore::new(
            &vm,
            KvParams {
                records: 1000,
                operations: 0,
                ..KvParams::default()
            },
        );
        for key in 1..=500u64 {
            kv.put(key, key * 7);
        }
        for key in 1..=500u64 {
            assert_eq!(kv.get(key), Some(key * 7), "key {key}");
        }
        assert_eq!(kv.get(99_999), None);
    }

    #[test]
    fn transaction_mix_verifies_under_pressure() {
        // Table ~4x local memory: constant random paging.
        let (_e, vm) = vm_fixture(64, 2048);
        let mut kv = KvStore::new(
            &vm,
            KvParams {
                records: 20_000, // table ≈ 40B * 65536 slots ≈ 2.6MB vs 256KB local
                operations: 4_000,
                ..KvParams::default()
            },
        );
        let result = kv.run();
        assert!(result.verified > 0, "sampled verification ran");
        assert!(result.hits > 0 && result.updates > 0);
        assert!(vm.stats().swap_outs > 0, "must have paged");
    }

    #[test]
    fn skewed_mix_faults_less_than_uniform() {
        let run = |skewed| {
            let (engine, vm) = vm_fixture(64, 2048);
            let mut kv = KvStore::new(
                &vm,
                KvParams {
                    records: 20_000,
                    operations: 4_000,
                    skewed,
                    ..KvParams::default()
                },
            );
            kv.run();
            let _ = engine;
            vm.stats().major_faults
        };
        let uniform = run(false);
        let skewed = run(true);
        assert!(
            skewed < uniform,
            "a hot set should fault less: skewed {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn update_overwrites_are_visible() {
        let (_e, vm) = vm_fixture(2048, 256);
        let mut kv = KvStore::new(&vm, KvParams::default());
        kv.put(42, 1);
        kv.put(42, 2);
        assert_eq!(kv.get(42), Some(2));
    }
}
