//! Scenario assembly: full simulated machines for every figure.
//!
//! A [`Scenario`] is one experimental configuration from the paper's §6.1
//! setup: a client node with a given amount of local memory and one swap
//! back-end — nothing (abundant local memory), HPBD with N memory servers,
//! NBD over GigE or IPoIB, or the local ATA disk. The run methods execute
//! a workload to completion on the simulated machine and return a
//! [`RunReport`] with the virtual execution time and the paging/device
//! counters the harness prints.

use crate::barnes::{Barnes, BarnesParams};
use crate::kvstore::{KvParams, KvStore};
use crate::qsort::QsortTask;
use crate::task::Scheduler;
use crate::testswap::TestswapTask;
use crate::zipf::{ZipfParams, ZipfTask};
use blockdev::{BlockDevice, DispatchRecord, RequestQueue, SimDisk};
use hpbd::{ClusterBuilder, HpbdCluster, HpbdConfig};
use ibsim::Fabric;
use netmodel::{Calibration, Node, Transport};
use simcore::{Engine, FlightSummary, LifecycleHub, MetricsSnapshot, SimDuration, Tracer};
use simfault::FaultPlan;
use std::cell::RefCell;
use std::rc::Rc;
use vmsim::{
    AddressSpace, BlockBackend, DirectBackend, DirectConfig, SwapBackend, Vm, VmConfig, VmStats,
};

/// Which swap back-end a scenario uses.
#[derive(Clone, Debug)]
pub enum SwapKind {
    /// No swap device: local memory must fit the workload ("enough local
    /// memory" baseline).
    LocalOnly,
    /// HPBD over InfiniBand with this many memory servers.
    Hpbd {
        /// Number of remote memory servers (extents split evenly).
        servers: usize,
    },
    /// NBD over the given TCP transport (single server, as in Linux 2.4).
    Nbd {
        /// GigE or IPoIB.
        transport: Transport,
    },
    /// The local ATA disk.
    Disk,
}

/// How swap I/O reaches the device: through the kernel block layer (the
/// paper's path) or the frontswap-style user-space path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SwapPath {
    /// Kernel block-device path: bio staging, elevator merging, queue
    /// plug/unplug, interrupt-style completion.
    #[default]
    Block,
    /// User-space direct path: per-page submission straight to the
    /// device, busy-poll completion with adaptive event fallback
    /// ([`vmsim::DirectBackend`], figU).
    Direct,
}

/// One experimental configuration.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Local memory available to the VM.
    pub local_mem: u64,
    /// Total swap capacity (split across HPBD servers if several).
    pub swap_capacity: u64,
    /// Back-end selection.
    pub kind: SwapKind,
    /// HPBD tuning (ignored by other kinds).
    pub hpbd: HpbdConfig,
    /// Override the VM's swap-in readahead window (None: the 2.4 default
    /// of 8 pages). 1 disables readahead — the right setting for
    /// random-access workloads like the KV mix.
    pub readahead_pages: Option<usize>,
    /// Tracer installed on the scenario's engine (None: tracing off).
    /// Hand out per-run tracers from one [`simcore::TraceSession`] to
    /// collect several configurations into a single Chrome trace.
    pub tracer: Option<Tracer>,
    /// Deterministic fault plan armed against the swap back-end (HPBD
    /// servers/links, or the NBD TCP connection). An empty plan — the
    /// default — installs nothing: the run is byte-identical to one built
    /// before fault injection existed.
    pub fault_plan: FaultPlan,
    /// Record per-request lifecycle phases into a flight recorder (off by
    /// default: the hot-path marks cost time, so benchmarked runs keep it
    /// disabled and attribution runs are separate passes).
    pub record_lifecycle: bool,
    /// Block-layer merge cap for the swap request queue, in bytes (the
    /// Linux 2.4 single-request bound; default 128 KiB). Ablations shrink
    /// or grow it without touching the queue code.
    pub queue_max_request_bytes: u64,
    /// Staged-bio count that forces an unplug even without an explicit
    /// flush (default 4096).
    pub queue_flush_backstop: usize,
    /// Kernel block path or user-space direct path (default: Block — every
    /// paper figure; figU sweeps both).
    pub swap_path: SwapPath,
    /// Tuning for the direct path (ignored by [`SwapPath::Block`]).
    pub direct: DirectConfig,
}

impl ScenarioConfig {
    /// A configuration with default HPBD tuning.
    pub fn new(local_mem: u64, swap_capacity: u64, kind: SwapKind) -> ScenarioConfig {
        ScenarioConfig {
            local_mem,
            swap_capacity,
            kind,
            hpbd: HpbdConfig::default(),
            readahead_pages: None,
            tracer: None,
            fault_plan: FaultPlan::new(),
            record_lifecycle: false,
            queue_max_request_bytes: blockdev::MAX_REQUEST_BYTES,
            queue_flush_backstop: blockdev::DEFAULT_FLUSH_BACKSTOP,
            swap_path: SwapPath::Block,
            direct: DirectConfig::default(),
        }
    }
}

/// Uniform result record for the figure harnesses.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Configuration label ("local", "HPBD-4", "NBD-GigE", "disk").
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Virtual execution time.
    pub elapsed: SimDuration,
    /// VM paging counters.
    pub vm: VmStats,
    /// Dispatched swap requests (count, mean size in bytes).
    pub requests: u64,
    /// Mean dispatched request size.
    pub mean_request_bytes: f64,
    /// Swap-in (read) service latency in µs: (mean, max, count).
    pub read_latency_us: (f64, f64, u64),
    /// Swap-out (write) service latency in µs: (mean, max, count).
    pub write_latency_us: (f64, f64, u64),
    /// HPBD client counters (None for non-HPBD scenarios).
    pub hpbd_client: Option<hpbd::ClientStats>,
    /// Metrics registry snapshot at report time (counters, gauges,
    /// latency histograms — see `simtrace`).
    pub metrics: MetricsSnapshot,
    /// Simulation events executed by the engine over this run (the
    /// denominator for events/sec in `perfbench`).
    pub events: u64,
    /// Flight-recorder snapshot: per-device phase attribution over every
    /// completed swap request. None unless the scenario was built with
    /// [`ScenarioConfig::record_lifecycle`] set.
    pub lifecycle: Option<FlightSummary>,
}

/// A built machine, ready to run workloads.
pub struct Scenario {
    /// The event engine (fresh per scenario).
    pub engine: Engine,
    /// Calibration in effect.
    pub cal: Rc<Calibration>,
    /// The client node.
    pub node: Node,
    /// The VM on the client node.
    pub vm: Vm,
    /// HPBD deployment, when `kind` is HPBD.
    pub hpbd: Option<HpbdCluster>,
    /// Disk device, when `kind` is Disk.
    pub disk: Option<Rc<SimDisk>>,
    /// The swap request queue (None for LocalOnly and the direct path).
    pub swap_queue: Option<Rc<RequestQueue>>,
    /// The swap backend the VM talks to (None for LocalOnly).
    pub backend: Option<Rc<dyn SwapBackend>>,
    /// The direct backend, when `swap_path` is Direct (poll statistics).
    pub direct: Option<Rc<DirectBackend>>,
    label: String,
}

/// Raw device selection: the node it hangs off, the owning cluster /
/// disk handles kept alive for stats, the device itself, and a label.
type RawDevice = (
    Node,
    Option<HpbdCluster>,
    Option<Rc<SimDisk>>,
    Option<Rc<dyn BlockDevice>>,
    String,
);

/// Swap-path wiring over a raw device: the kernel request queue (block
/// path only), the backend handed to vmsim, the direct handle for
/// poll-stats, and the path-qualified label.
type SwapWiring = (
    Option<Rc<RequestQueue>>,
    Option<Rc<dyn SwapBackend>>,
    Option<Rc<DirectBackend>>,
    String,
);

impl Scenario {
    /// Build a machine per `config` with the 2005 calibration.
    pub fn build(config: &ScenarioConfig) -> Scenario {
        Scenario::build_with(config, Rc::new(Calibration::cluster_2005()))
    }

    /// Build with an explicit calibration (ablations).
    pub fn build_with(config: &ScenarioConfig, cal: Rc<Calibration>) -> Scenario {
        let engine = Engine::new();
        if let Some(tracer) = &config.tracer {
            engine.set_tracer(tracer.clone());
        }
        if config.record_lifecycle {
            engine.set_lifecycle(LifecycleHub::enabled());
        }
        let mut vm_config = VmConfig::for_memory(config.local_mem);
        if let Some(ra) = config.readahead_pages {
            assert!(ra >= 1, "readahead window must be at least the page itself");
            vm_config.readahead_pages = ra;
        }

        // Each kind yields its raw device; the swap *path* below decides
        // whether the kernel request queue sits in front of it.
        let (node, hpbd, disk, device, label): RawDevice = match &config.kind {
            SwapKind::LocalOnly => {
                let node = Node::new("client", 0, 2);
                (node, None, None, None, "local".to_string())
            }
            SwapKind::Hpbd { servers } => {
                let fabric = Fabric::new(engine.clone(), cal.clone());
                let client_ibnode = fabric.add_node("hpbd-client");
                let node = client_ibnode.node().clone();
                let per_server = (config.swap_capacity / *servers as u64 / 4096).max(1) * 4096;
                let cluster = ClusterBuilder::new()
                    .config(config.hpbd.clone())
                    .servers(*servers)
                    .per_server_capacity(per_server)
                    .fault_plan(config.fault_plan.clone())
                    .build_on(&fabric, client_ibnode);
                let dev: Rc<dyn BlockDevice> = Rc::new(cluster.client.clone());
                let label = format!("HPBD-{servers}");
                (node, Some(cluster), None, Some(dev), label)
            }
            SwapKind::Nbd { transport } => {
                let node = Node::new("client", 0, 2);
                let dev = nbd::build_pair_with_faults(
                    &engine,
                    cal.clone(),
                    *transport,
                    &node,
                    config.swap_capacity,
                    &config.fault_plan,
                );
                let label = format!("NBD-{}", transport.label());
                (node, None, None, Some(Rc::new(dev)), label)
            }
            SwapKind::Disk => {
                let node = Node::new("client", 0, 2);
                let dev = Rc::new(SimDisk::new(
                    engine.clone(),
                    cal.disk.clone(),
                    config.swap_capacity,
                    "hda",
                ));
                (node, None, Some(dev.clone()), Some(dev), "disk".to_string())
            }
        };

        let (swap_queue, backend, direct, label): SwapWiring = match device {
            None => (None, None, None, label),
            Some(dev) => match config.swap_path {
                SwapPath::Block => {
                    let queue = Rc::new(RequestQueue::with_limits(
                        engine.clone(),
                        cal.clone(),
                        node.clone(),
                        dev,
                        config.queue_max_request_bytes,
                        config.queue_flush_backstop,
                    ));
                    let block = BlockBackend::new(queue.clone());
                    (Some(queue), Some(block as Rc<dyn SwapBackend>), None, label)
                }
                SwapPath::Direct => {
                    let direct = DirectBackend::new(
                        engine.clone(),
                        node.clone(),
                        dev,
                        config.direct.clone(),
                    );
                    (
                        None,
                        Some(direct.clone() as Rc<dyn SwapBackend>),
                        Some(direct),
                        format!("{label}-direct"),
                    )
                }
            },
        };

        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), vm_config);
        if let Some(backend) = &backend {
            vm.add_swap_backend(backend.clone(), 0);
        }
        Scenario {
            engine,
            cal,
            node,
            vm,
            hpbd,
            disk,
            swap_queue,
            backend,
            direct,
            label,
        }
    }

    /// Configuration label for reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The dispatch log of the swap queue, if any.
    pub fn dispatch_log(&self) -> Option<Rc<RefCell<Vec<DispatchRecord>>>> {
        self.swap_queue.as_ref().map(|q| q.dispatch_log())
    }

    fn report(&self, workload: &str, elapsed: SimDuration) -> RunReport {
        let (requests, mean) = match &self.backend {
            Some(b) => (b.requests(), b.mean_request_bytes()),
            None => (0, 0.0),
        };
        let lat = |s: simcore::OnlineStats| (s.mean(), s.max().unwrap_or(0.0), s.count());
        let (read_latency_us, write_latency_us) = match &self.backend {
            Some(b) => (lat(b.read_latency()), lat(b.write_latency())),
            None => ((0.0, 0.0, 0), (0.0, 0.0, 0)),
        };
        RunReport {
            label: self.label.clone(),
            workload: workload.to_string(),
            elapsed,
            vm: self.vm.stats(),
            requests,
            mean_request_bytes: mean,
            read_latency_us,
            write_latency_us,
            hpbd_client: self.hpbd.as_ref().map(|c| c.client.stats()),
            metrics: self.engine.metrics().snapshot(),
            events: self.engine.events_executed(),
            lifecycle: if self.engine.lifecycle_enabled() {
                Some(self.engine.lifecycle().summary())
            } else {
                None
            },
        }
    }

    fn scheduler(&self) -> Scheduler {
        Scheduler::new(self.engine.clone(), 2).with_node_cpu(self.node.cpu().clone())
    }

    /// Run a debug-only verification proof with tracing detached: the
    /// walk re-faults evicted pages, and that post-run traffic must not
    /// make the trace buffer differ between build profiles (the block
    /// differential test fingerprints it).
    fn untraced_proof(&self, proof: impl FnOnce() -> bool) -> bool {
        let saved = self.engine.tracer();
        self.engine.set_tracer(Tracer::disabled());
        let ok = proof();
        self.engine.set_tracer(saved);
        ok
    }

    /// Run testswap over `elements` i32s.
    pub fn run_testswap(&self, elements: usize) -> RunReport {
        let space = AddressSpace::new(&self.vm);
        let mut task = TestswapTask::new(&space, elements, self.cal.compute.testswap_ns_per_write);
        let t0 = self.engine.now();
        let done = self.scheduler().run_one(&mut task);
        self.report("testswap", done - t0)
    }

    /// Run one quicksort instance over `elements` random i32s.
    pub fn run_qsort(&self, elements: usize, seed: u64) -> RunReport {
        let space = AddressSpace::new(&self.vm);
        let mut task = QsortTask::new(
            &space,
            elements,
            seed,
            self.cal.compute.qsort_ns_per_op,
            "qsort",
        );
        let t0 = self.engine.now();
        let done = self.scheduler().run_one(&mut task);
        // Snapshot the report before the sortedness proof: the debug-only
        // verification walk re-faults evicted pages, and that traffic must
        // not make the metrics/trace differ between build profiles.
        let report = self.report("quicksort", done - t0);
        debug_assert!(self.untraced_proof(|| task.is_sorted()));
        report
    }

    /// Run two concurrent quicksort instances (Figure 9). Returns the two
    /// completion spans and a combined report (elapsed = max of the two).
    pub fn run_qsort_pair(
        &self,
        elements: usize,
        seed: u64,
    ) -> (SimDuration, SimDuration, RunReport) {
        let s1 = AddressSpace::new(&self.vm);
        let s2 = AddressSpace::new(&self.vm);
        let ns = self.cal.compute.qsort_ns_per_op;
        let mut a = QsortTask::new(&s1, elements, seed, ns, "qsort-a");
        let mut b = QsortTask::new(&s2, elements, seed.wrapping_add(1), ns, "qsort-b");
        let t0 = self.engine.now();
        let done = {
            let mut tasks: [&mut dyn crate::task::Task; 2] = [&mut a, &mut b];
            self.scheduler().run(&mut tasks)
        };
        let (da, db) = (done[0] - t0, done[1] - t0);
        // Report first, proof second — see run_qsort.
        let report = self.report("quicksort-x2", da.max(db));
        debug_assert!(self.untraced_proof(|| a.is_sorted() && b.is_sorted()));
        (da, db, report)
    }

    /// Run the database-like key-value transaction mix (extra workload
    /// beyond the paper; see EXPERIMENTS.md).
    pub fn run_kvstore(&self, params: KvParams) -> RunReport {
        let t0 = self.engine.now();
        let mut kv = KvStore::new(&self.vm, params);
        let result = kv.run();
        assert!(result.hits > 0 || result.updates > 0);
        let elapsed = self.engine.now() - t0;
        self.report("kvstore", elapsed)
    }

    /// Run the Zipf-sampled page walker (the figU skewed-access variant).
    /// Returns the report plus the task's data checksum for differential
    /// verification across swap paths.
    pub fn run_zipf(&self, params: ZipfParams) -> (RunReport, u64) {
        let space = AddressSpace::new(&self.vm);
        let mut task = ZipfTask::new(&space, params.clone());
        let t0 = self.engine.now();
        let done = self.scheduler().run_one(&mut task);
        assert_eq!(task.progress(), params.operations);
        (self.report("zipf", done - t0), task.checksum())
    }

    /// Run Barnes-Hut with the given parameters (Figure 8).
    pub fn run_barnes(&self, params: BarnesParams) -> RunReport {
        let t0 = self.engine.now();
        let mut barnes = Barnes::new(&self.vm, params);
        let result = barnes.run();
        assert!(result.kinetic_energy.is_finite());
        let elapsed = self.engine.now() - t0;
        self.report("barnes", elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    /// Small-scale version of the Figure 5 setup: dataset 2x local memory.
    fn run_testswap_on(kind: SwapKind, local_mem: u64) -> RunReport {
        let config = ScenarioConfig::new(local_mem, 64 * MB, kind);
        let scenario = Scenario::build(&config);
        // 8M i32 = 32 MB dataset.
        scenario.run_testswap(8 << 20)
    }

    #[test]
    fn figure5_ordering_holds_at_small_scale() {
        // local < HPBD < NBD-IPoIB < NBD-GigE < disk.
        let local = run_testswap_on(SwapKind::LocalOnly, 64 * MB);
        let hpbd = run_testswap_on(SwapKind::Hpbd { servers: 1 }, 16 * MB);
        let ipoib = run_testswap_on(
            SwapKind::Nbd {
                transport: Transport::IpoIb,
            },
            16 * MB,
        );
        let gige = run_testswap_on(
            SwapKind::Nbd {
                transport: Transport::GigE,
            },
            16 * MB,
        );
        let disk = run_testswap_on(SwapKind::Disk, 16 * MB);
        assert!(
            local.elapsed < hpbd.elapsed,
            "local {} !< hpbd {}",
            local.elapsed,
            hpbd.elapsed
        );
        assert!(
            hpbd.elapsed < ipoib.elapsed,
            "hpbd {} !< ipoib {}",
            hpbd.elapsed,
            ipoib.elapsed
        );
        assert!(
            ipoib.elapsed < gige.elapsed,
            "ipoib {} !< gige {}",
            ipoib.elapsed,
            gige.elapsed
        );
        assert!(
            gige.elapsed < disk.elapsed,
            "gige {} !< disk {}",
            gige.elapsed,
            disk.elapsed
        );
    }

    #[test]
    fn hpbd_data_integrity_through_qsort() {
        let config = ScenarioConfig::new(8 * MB, 64 * MB, SwapKind::Hpbd { servers: 2 });
        let scenario = Scenario::build(&config);
        // is_sorted() is debug-asserted inside run_qsort.
        let report = scenario.run_qsort(1 << 20, 3); // 4 MB dataset, 8 MB mem... fits mostly
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn request_sizes_cluster_near_128k_for_testswap() {
        // Figure 6: sequential page-outs merge into large requests.
        let report = run_testswap_on(SwapKind::Hpbd { servers: 1 }, 16 * MB);
        assert!(
            report.mean_request_bytes > 64.0 * 1024.0,
            "mean request {} should be large (merging works)",
            report.mean_request_bytes
        );
        assert!(report.requests > 0);
    }

    #[test]
    fn multi_server_roughly_flat_through_4() {
        let t = |servers| {
            run_testswap_on(SwapKind::Hpbd { servers }, 16 * MB)
                .elapsed
                .as_nanos() as f64
        };
        let one = t(1);
        let four = t(4);
        assert!(
            (four - one).abs() / one < 0.25,
            "1 server {one} vs 4 servers {four} should be within 25%"
        );
    }

    #[test]
    fn pair_run_completes_and_reports_both() {
        let config = ScenarioConfig::new(8 * MB, 128 * MB, SwapKind::Hpbd { servers: 2 });
        let scenario = Scenario::build(&config);
        let (da, db, report) = scenario.run_qsort_pair(1 << 20, 9);
        assert!(da.as_nanos() > 0 && db.as_nanos() > 0);
        assert_eq!(report.workload, "quicksort-x2");
        assert!(report.elapsed >= da.min(db));
    }

    #[test]
    fn barnes_runs_on_hpbd() {
        let config = ScenarioConfig::new(MB, 64 * MB, SwapKind::Hpbd { servers: 1 });
        let scenario = Scenario::build(&config);
        let report = scenario.run_barnes(BarnesParams {
            bodies: 8192,
            iterations: 1,
            ..BarnesParams::default()
        });
        assert!(report.vm.swap_outs > 0, "Barnes should page at 1MB local");
        assert!(report.elapsed.as_nanos() > 0);
    }
}
