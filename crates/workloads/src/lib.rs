#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # workloads — the paper's applications on the simulated machine
//!
//! Three programs drive every figure in the evaluation (paper §6.1):
//!
//! * [`testswap`] — the microbenchmark: allocate a large array and write
//!   integers into it sequentially.
//! * [`qsort`] — CLRS quicksort over randomly generated integers (the
//!   paper's 256 Mi-element / 1 GiB dataset at scale 1).
//! * [`barnes`] — the SPLASH-2 Barnes-Hut N-body simulation (the paper
//!   simulates 2,097,152 bodies with a ~516 MB peak footprint).
//!
//! A fourth workload, [`kvstore`] (a database-like transaction mix over a
//! paged hash table), goes beyond the paper's three programs to exercise
//! random single-page faults — see EXPERIMENTS.md §KV. A fifth, [`zipf`],
//! samples pages from a Zipf(s=1) popularity distribution with hot pages
//! scattered across the address range — the skewed-access variant figU
//! uses to compare the kernel-block and user-space direct swap paths.
//!
//! testswap and quicksort are written as *resumable tasks*
//! ([`task::Task`]): every paged-memory access can report "would block",
//! letting the [`task::Scheduler`] interleave several application
//! instances over the shared VM — that is how the two concurrent quicksort
//! instances of Figure 9 run on the dual-CPU client. Barnes-Hut uses the
//! blocking access path (it only appears single-instance, Figure 8).
//!
//! [`scenario`] assembles full machines — local-memory, HPBD with N
//! servers, NBD over GigE/IPoIB, or local disk — and returns uniform
//! [`scenario::RunReport`]s for the figure harnesses.

pub mod barnes;
pub mod kvstore;
pub mod qsort;
pub mod scenario;
pub mod task;
pub mod testswap;
pub mod zipf;

pub use scenario::{RunReport, Scenario, ScenarioConfig, SwapKind, SwapPath};
pub use task::{Scheduler, Step, Task};
